"""Exception hierarchy for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so that callers
can distinguish library errors from programming errors (``TypeError`` and
friends) with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class GeometryError(ReproError):
    """Raised for invalid geometric constructions (e.g. a degenerate segment)."""


class AlgebraError(ReproError):
    """Raised for invalid polynomial operations (e.g. dividing by zero poly)."""


class NetworkConfigurationError(ReproError):
    """Raised when a wireless network is constructed with invalid parameters.

    Examples: fewer than two stations, a non-positive transmission power,
    a negative background noise, or a reception threshold below the value a
    particular algorithm requires.
    """


class PointLocationError(ReproError):
    """Raised when the point-location preprocessing cannot be carried out.

    Typical causes: the reception zone of the target station is degenerate
    (another station shares its location) or the performance parameter
    ``epsilon`` is outside ``(0, 1)``.
    """


class DiagramError(ReproError):
    """Raised when a raster or contour diagram cannot be constructed."""


class RasterCacheError(DiagramError):
    """Raised for invalid raster tile-cache configuration or arguments.

    Examples: a non-positive byte budget or tile size, or a ``cache=``
    argument that is neither a :class:`repro.raster.TileCache` nor ``True``.
    """


class ServiceError(ReproError):
    """Raised for invalid query-service configuration or lifecycle misuse.

    Examples: a non-positive latency budget or batch size, starting a
    service twice, or routing to a locator name the router does not front.
    """


class ServiceClosedError(ServiceError):
    """Raised when a query is submitted to (or aborted by) a closed service.

    Submitters blocked in ``submit`` when the service shuts down without
    draining receive this exception through their pending future.
    """
