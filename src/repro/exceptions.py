"""Exception hierarchy for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so that callers
can distinguish library errors from programming errors (``TypeError`` and
friends) with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class GeometryError(ReproError):
    """Raised for invalid geometric constructions (e.g. a degenerate segment)."""


class AlgebraError(ReproError):
    """Raised for invalid polynomial operations (e.g. dividing by zero poly)."""


class NetworkConfigurationError(ReproError):
    """Raised when a wireless network is constructed with invalid parameters.

    Examples: fewer than two stations, a non-positive transmission power,
    a negative background noise, or a reception threshold below the value a
    particular algorithm requires.
    """


class PointLocationError(ReproError):
    """Raised when the point-location preprocessing cannot be carried out.

    Typical causes: the reception zone of the target station is degenerate
    (another station shares its location) or the performance parameter
    ``epsilon`` is outside ``(0, 1)``.
    """


class DiagramError(ReproError):
    """Raised when a raster or contour diagram cannot be constructed."""


class RasterCacheError(DiagramError):
    """Raised for invalid raster tile-cache configuration or arguments.

    Examples: a non-positive byte budget or tile size, or a ``cache=``
    argument that is neither a :class:`repro.raster.TileCache` nor ``True``.
    """


class EngineError(ReproError, ValueError):
    """Raised for invalid engine batch arguments or backend configuration.

    Examples: query points whose shape is not ``(m, 2)``, a per-point index
    array of the wrong length, or a non-positive worker count.  Also a
    :class:`ValueError`: these are argument-validation failures, so existing
    callers that caught ``ValueError`` keep working while new code catches
    the taxonomy root.
    """


class WorkloadError(ReproError, ValueError):
    """Raised for invalid workload or load-generator parameters.

    Examples: a negative query count, a non-positive arrival rate, or a
    schedule whose length does not match its points.  Also a
    :class:`ValueError` for the same compatibility reason as
    :class:`EngineError`.
    """


class LintError(ReproError):
    """Raised by :mod:`repro.lint` for unusable linter input.

    Examples: a missing lint path, an unknown rule id, or a baseline file
    that is malformed or missing a written justification.
    """


class ServiceError(ReproError):
    """Raised for invalid query-service configuration or lifecycle misuse.

    Examples: a non-positive latency budget or batch size, starting a
    service twice, or routing to a locator name the router does not front.
    """


class ObservabilityError(ReproError):
    """Raised for invalid metrics-hub configuration or lifecycle misuse.

    Examples: registering two sources under one name, a non-positive
    collection interval, or starting an already running hub.
    """


class ControlError(ReproError):
    """Raised for invalid closed-loop controller configuration.

    Examples: a budget floor above the cap, a non-positive AIMD step, or
    actuating a controller that was never bound to its target.
    """


class ComponentError(ReproError):
    """Raised for runtime-framework misuse (:mod:`repro.runtime`).

    Examples: a malformed ``<kind>/<name>`` spec string, an unknown registry
    kind, adding a component to an already-started composition root, or
    starting a generic component twice.  Components with their own taxonomy
    branch (service, observability, control) override the error types the
    shared lifecycle raises, so this class surfaces only from the framework
    itself.
    """


class ServiceClosedError(ServiceError):
    """Raised when a query is submitted to (or aborted by) a closed service.

    Submitters blocked in ``submit`` when the service shuts down without
    draining receive this exception through their pending future.
    """


class ComponentClosedError(ComponentError):
    """Raised when a closed generic runtime component is used again."""


class ObservabilityClosedError(ObservabilityError):
    """Raised when a stopped metrics hub is asked to collect or restart.

    The unified component lifecycle is terminal: a hub that has been
    stopped keeps its counters readable but no longer samples.
    """


class ControlClosedError(ControlError):
    """Raised when a stopped controller receives a record to actuate on."""
