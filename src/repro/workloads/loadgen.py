"""Async load generators for the micro-batching query service.

Three client shapes drive :class:`~repro.service.QueryService` the way real
traffic would, all deterministic given a seed:

* **Poisson** (open loop) — queries arrive at exponential inter-arrival
  times for a target rate, regardless of how fast answers come back.  The
  steady-traffic shape micro-batching is designed for: within a 2 ms budget
  at rate ``r`` the expected batch size is ``r * 0.002``.
* **Burst** (open loop) — groups of queries land simultaneously with gaps
  between groups; models synchronized clients and stresses the
  max-batch-size path.
* **Closed loop** — ``k`` concurrent clients each submit their next query
  only after receiving the previous answer; models request-per-connection
  clients and bounds in-flight work by ``k``.

Schedules (arrival offsets in seconds) are plain numpy arrays, so tests can
inspect them; the ``run_*`` coroutines submit the points of a workload on
that schedule and return the answers **in workload order**, ready for a
bit-identical comparison against a direct ``locate_batch``.
"""

from __future__ import annotations

import asyncio
import random
from typing import List

import numpy as np

from ..engine.batch import as_points_array
from ..exceptions import WorkloadError

__all__ = [
    "poisson_schedule",
    "burst_schedule",
    "run_scheduled",
    "run_poisson",
    "run_bursts",
    "run_closed_loop",
]


def poisson_schedule(count: int, rate: float, seed: int = 0) -> np.ndarray:
    """Arrival offsets (seconds) of a Poisson process with ``rate`` q/s.

    Deterministic for a given seed; offsets are the cumulative sum of
    exponential inter-arrival gaps, starting at the first gap.
    """
    if count < 0:
        raise WorkloadError("count must be >= 0")
    if rate <= 0.0:
        raise WorkloadError("rate must be positive")
    rng = random.Random(seed)
    gaps = [rng.expovariate(rate) for _ in range(count)]
    return np.cumsum(np.asarray(gaps, dtype=float)) if count else np.empty(0)


def burst_schedule(count: int, burst_size: int, gap: float) -> np.ndarray:
    """Arrival offsets of ``count`` queries in simultaneous bursts.

    Queries ``[0, burst_size)`` arrive at offset 0, the next burst at
    ``gap`` seconds, and so on (the last burst may be partial).
    """
    if count < 0:
        raise WorkloadError("count must be >= 0")
    if burst_size < 1:
        raise WorkloadError("burst_size must be >= 1")
    if gap < 0.0:
        raise WorkloadError("gap must be >= 0")
    return (np.arange(count) // burst_size) * gap


async def run_scheduled(service, points, offsets) -> np.ndarray:
    """Open-loop driver: submit ``points[i]`` at ``offsets[i]`` seconds.

    All clients are spawned up front and sleep until their scheduled
    arrival, so late queries never wait on early answers (a genuinely open
    loop).  Returns the ``int64`` answers in workload order.
    """
    pts = as_points_array(points)
    offsets = np.asarray(offsets, dtype=float)
    if offsets.shape != (len(pts),):
        raise WorkloadError(
            f"expected one offset per point ({len(pts)}), got {offsets.shape}"
        )
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def client(index: int) -> int:
        delay = start + offsets[index] - loop.time()
        if delay > 0.0:
            await asyncio.sleep(delay)
        return await service.locate((pts[index, 0], pts[index, 1]))

    answers = await asyncio.gather(*(client(i) for i in range(len(pts))))
    return np.asarray(answers, dtype=np.int64)


async def run_poisson(service, points, rate: float, seed: int = 0) -> np.ndarray:
    """Serve ``points`` as Poisson arrivals at ``rate`` queries/second."""
    return await run_scheduled(
        service, points, poisson_schedule(len(as_points_array(points)), rate, seed)
    )


async def run_bursts(
    service, points, burst_size: int, gap: float = 0.005
) -> np.ndarray:
    """Serve ``points`` in simultaneous bursts ``gap`` seconds apart."""
    return await run_scheduled(
        service, points, burst_schedule(len(as_points_array(points)), burst_size, gap)
    )


async def run_closed_loop(service, points, clients: int = 8) -> np.ndarray:
    """Serve ``points`` with ``clients`` concurrent request-response clients.

    Point ``i`` is handled by client ``i % clients``; each client submits
    its next query only once the previous answer arrived, so at most
    ``clients`` queries are ever outstanding.  Answers come back in
    workload order.
    """
    pts = as_points_array(points)
    if clients < 1:
        raise WorkloadError("clients must be >= 1")
    answers = np.full(len(pts), 0, dtype=np.int64)

    async def client(first: int) -> None:
        for index in range(first, len(pts), clients):
            answers[index] = await service.locate((pts[index, 0], pts[index, 1]))

    workers: List = [client(k) for k in range(min(clients, max(len(pts), 1)))]
    await asyncio.gather(*workers)
    return answers
