"""Random and structured network generators for experiments and benchmarks.

The paper evaluates on hand-crafted small configurations (its figures) and on
analytic worst cases; the benchmark harness additionally sweeps over synthetic
network families so that the structural results and the point-location
structure are exercised across scales.  All generators are deterministic given
a seed and return :class:`~repro.model.network.WirelessNetwork` instances.

Families:

* ``uniform_random_network`` — stations placed uniformly at random in a square
  (with a minimum-separation rejection rule so zones are non-degenerate);
* ``clustered_network`` — Gaussian clusters around random centres (models the
  dense deployments where cumulative interference dominates, cf. Figure 2);
* ``ring_network`` / ``grid_network`` / ``colinear_network`` — structured
  placements, including the positive colinear networks of Section 4.2.2 that
  realise the worst-case fatness;
* ``two_station_network`` — the primitive of Section 4.2.1.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import NetworkConfigurationError
from ..geometry.point import Point
from ..model.network import DEFAULT_BETA, WirelessNetwork

__all__ = [
    "uniform_random_network",
    "clustered_network",
    "clustered_outliers_network",
    "ring_network",
    "grid_network",
    "colinear_network",
    "two_station_network",
    "random_query_points",
    "random_query_array",
]


def uniform_random_network(
    station_count: int,
    side: float = 10.0,
    minimum_separation: float = 0.5,
    noise: float = 0.0,
    beta: float = DEFAULT_BETA,
    seed: int = 0,
    max_attempts: int = 100_000,
) -> WirelessNetwork:
    """Stations uniformly at random in ``[0, side]^2`` with minimum separation.

    Raises:
        NetworkConfigurationError: if the requested density is infeasible
            within ``max_attempts`` rejection-sampling attempts.
    """
    if station_count < 2:
        raise NetworkConfigurationError("a network needs at least two stations")
    rng = random.Random(seed)
    points: List[Point] = []
    attempts = 0
    while len(points) < station_count:
        attempts += 1
        if attempts > max_attempts:
            raise NetworkConfigurationError(
                "could not place stations with the requested minimum separation"
            )
        candidate = Point(rng.uniform(0.0, side), rng.uniform(0.0, side))
        if all(
            candidate.distance_to(existing) >= minimum_separation
            for existing in points
        ):
            points.append(candidate)
    return WirelessNetwork.uniform(points, noise=noise, beta=beta)


def clustered_network(
    cluster_count: int,
    stations_per_cluster: int,
    side: float = 20.0,
    cluster_spread: float = 1.0,
    minimum_separation: float = 0.1,
    noise: float = 0.0,
    beta: float = DEFAULT_BETA,
    seed: int = 0,
) -> WirelessNetwork:
    """Gaussian clusters of stations around uniformly placed centres."""
    if cluster_count < 1 or stations_per_cluster < 1:
        raise NetworkConfigurationError("need at least one cluster and one station")
    if cluster_count * stations_per_cluster < 2:
        raise NetworkConfigurationError("a network needs at least two stations")
    rng = random.Random(seed)
    centres = [
        Point(rng.uniform(0.0, side), rng.uniform(0.0, side))
        for _ in range(cluster_count)
    ]
    points: List[Point] = []
    for centre in centres:
        placed = 0
        while placed < stations_per_cluster:
            candidate = Point(
                rng.gauss(centre.x, cluster_spread),
                rng.gauss(centre.y, cluster_spread),
            )
            if all(
                candidate.distance_to(existing) >= minimum_separation
                for existing in points
            ):
                points.append(candidate)
                placed += 1
    return WirelessNetwork.uniform(points, noise=noise, beta=beta)


def clustered_outliers_network(
    cluster_count: int,
    stations_per_cluster: int,
    outlier_count: int,
    side: float = 40.0,
    cluster_spread: float = 1.0,
    minimum_separation: float = 0.25,
    noise: float = 0.0,
    beta: float = DEFAULT_BETA,
    seed: int = 0,
    max_attempts: int = 100_000,
) -> WirelessNetwork:
    """Gaussian clusters plus sparse uniformly scattered outlier stations.

    The heavily skewed spatial distribution this produces — dense knots of
    stations with a thin haze between them — is the adversarial input for
    *spatial sharding*: uniform tiles end up wildly unbalanced (some empty,
    some holding a whole cluster) while median bisection stays balanced, so
    the sharded-locator tests and benchmarks sweep both on it.

    Args:
        cluster_count: number of Gaussian clusters.
        stations_per_cluster: stations per cluster.
        outlier_count: stations placed uniformly at random over the whole
            ``[0, side]^2`` box, independent of the clusters.
        cluster_spread: standard deviation of each cluster.
        minimum_separation: rejection-sampling distance between any two
            stations (keeps zones non-degenerate).
    """
    if cluster_count < 1 or stations_per_cluster < 1:
        raise NetworkConfigurationError("need at least one cluster and one station")
    if outlier_count < 0:
        raise NetworkConfigurationError("outlier_count must be non-negative")
    if cluster_count * stations_per_cluster + outlier_count < 2:
        raise NetworkConfigurationError("a network needs at least two stations")
    rng = random.Random(seed)
    centres = [
        Point(rng.uniform(0.0, side), rng.uniform(0.0, side))
        for _ in range(cluster_count)
    ]
    points: List[Point] = []
    attempts = 0

    def place(sample) -> None:
        nonlocal attempts
        while True:
            attempts += 1
            if attempts > max_attempts:
                raise NetworkConfigurationError(
                    "could not place stations with the requested minimum separation"
                )
            candidate = sample()
            if all(
                candidate.distance_to(existing) >= minimum_separation
                for existing in points
            ):
                points.append(candidate)
                return

    for centre in centres:
        for _ in range(stations_per_cluster):
            place(
                lambda: Point(
                    rng.gauss(centre.x, cluster_spread),
                    rng.gauss(centre.y, cluster_spread),
                )
            )
    for _ in range(outlier_count):
        place(lambda: Point(rng.uniform(0.0, side), rng.uniform(0.0, side)))
    return WirelessNetwork.uniform(points, noise=noise, beta=beta)


def ring_network(
    station_count: int,
    radius: float = 5.0,
    center: Point = Point(0.0, 0.0),
    noise: float = 0.0,
    beta: float = DEFAULT_BETA,
) -> WirelessNetwork:
    """Stations equally spaced on a circle (a highly symmetric diagram)."""
    if station_count < 2:
        raise NetworkConfigurationError("a ring needs at least two stations")
    points = [
        Point(
            center.x + radius * math.cos(2.0 * math.pi * k / station_count),
            center.y + radius * math.sin(2.0 * math.pi * k / station_count),
        )
        for k in range(station_count)
    ]
    return WirelessNetwork.uniform(points, noise=noise, beta=beta)


def grid_network(
    rows: int,
    columns: int,
    spacing: float = 2.0,
    noise: float = 0.0,
    beta: float = DEFAULT_BETA,
) -> WirelessNetwork:
    """Stations on a regular ``rows x columns`` grid."""
    if rows * columns < 2:
        raise NetworkConfigurationError("a grid network needs at least two stations")
    points = [
        Point(c * spacing, r * spacing) for r in range(rows) for c in range(columns)
    ]
    return WirelessNetwork.uniform(points, noise=noise, beta=beta)


def colinear_network(
    station_count: int,
    spacing: float = 2.0,
    noise: float = 0.0,
    beta: float = DEFAULT_BETA,
    positive: bool = True,
) -> WirelessNetwork:
    """A (positive) colinear network as in Section 4.2.2.

    Station 0 sits at the origin; the remaining stations sit on the positive
    x-axis at multiples of ``spacing`` (or alternate on both sides when
    ``positive`` is False).  Positive colinear networks realise the extreme
    fatness configurations analysed by the paper.
    """
    if station_count < 2:
        raise NetworkConfigurationError("a colinear network needs at least two stations")
    points = [Point(0.0, 0.0)]
    for index in range(1, station_count):
        offset = index * spacing
        if positive or index % 2 == 1:
            points.append(Point(offset, 0.0))
        else:
            points.append(Point(-offset, 0.0))
    return WirelessNetwork.uniform(points, noise=noise, beta=beta)


def two_station_network(
    separation: float = 2.0,
    power_ratio: float = 1.0,
    noise: float = 0.0,
    beta: float = DEFAULT_BETA,
) -> WirelessNetwork:
    """The two-station primitive of Section 4.2.1 (station 1 may be stronger)."""
    from ..model.station import Station

    if separation <= 0.0:
        raise NetworkConfigurationError("the two stations must be distinct")
    if power_ratio <= 0.0:
        raise NetworkConfigurationError("the power ratio must be positive")
    stations = (
        Station.at(0.0, 0.0, power=1.0, name="s0"),
        Station.at(separation, 0.0, power=power_ratio, name="s1"),
    )
    return WirelessNetwork(stations=stations, noise=noise, beta=beta)


def random_query_array(
    count: int,
    lower_left: Point,
    upper_right: Point,
    seed: int = 0,
) -> np.ndarray:
    """Uniform random query points as an ``(count, 2)`` coordinate array.

    This is the native format of the batch query engine
    (:mod:`repro.engine.batch`): experiments and benchmarks feed it straight
    into ``sinr_batch`` / ``locate_batch`` without building ``Point`` objects.
    Uses the same RNG sequence as :func:`random_query_points`, so both
    functions describe the same workload for a given seed.
    """
    rng = random.Random(seed)
    out = np.empty((count, 2), dtype=float)
    for index in range(count):
        out[index, 0] = rng.uniform(lower_left.x, upper_right.x)
        out[index, 1] = rng.uniform(lower_left.y, upper_right.y)
    return out


def random_query_points(
    count: int,
    lower_left: Point,
    upper_right: Point,
    seed: int = 0,
) -> List[Point]:
    """Uniform random query points in a box (for point-location benchmarks).

    Scalar-object view of the workload of :func:`random_query_array` (same
    coordinates for the same seed).
    """
    array = random_query_array(count, lower_left, upper_right, seed=seed)
    return [Point(x, y) for x, y in array.tolist()]
