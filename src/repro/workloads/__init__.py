"""Workload generation: network families, benchmark scenarios, async load shapes."""

from .generators import (
    clustered_network,
    clustered_outliers_network,
    colinear_network,
    grid_network,
    random_query_array,
    random_query_points,
    ring_network,
    two_station_network,
    uniform_random_network,
)
from .loadgen import (
    burst_schedule,
    poisson_schedule,
    run_bursts,
    run_closed_loop,
    run_poisson,
    run_scheduled,
)
from .scenarios import (
    DEFAULT_LOCATOR_SWEEP,
    SCENARIOS,
    Scenario,
    locator_sweep_names,
    point_location_networks,
    scenario,
    scenario_names,
    sharding_networks,
    theorem_verification_networks,
)

__all__ = [
    "DEFAULT_LOCATOR_SWEEP",
    "SCENARIOS",
    "Scenario",
    "burst_schedule",
    "clustered_network",
    "clustered_outliers_network",
    "colinear_network",
    "grid_network",
    "locator_sweep_names",
    "point_location_networks",
    "poisson_schedule",
    "random_query_array",
    "random_query_points",
    "ring_network",
    "run_bursts",
    "run_closed_loop",
    "run_poisson",
    "run_scheduled",
    "scenario",
    "scenario_names",
    "sharding_networks",
    "theorem_verification_networks",
    "two_station_network",
    "uniform_random_network",
]
