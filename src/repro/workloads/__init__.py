"""Workload generation: random network families and the benchmark scenario catalogue."""

from .generators import (
    clustered_network,
    colinear_network,
    grid_network,
    random_query_array,
    random_query_points,
    ring_network,
    two_station_network,
    uniform_random_network,
)
from .scenarios import (
    SCENARIOS,
    Scenario,
    point_location_networks,
    scenario,
    scenario_names,
    theorem_verification_networks,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "clustered_network",
    "colinear_network",
    "grid_network",
    "point_location_networks",
    "random_query_array",
    "random_query_points",
    "ring_network",
    "scenario",
    "scenario_names",
    "theorem_verification_networks",
    "two_station_network",
    "uniform_random_network",
]
