"""Workload generation: random network families and the benchmark scenario catalogue."""

from .generators import (
    clustered_network,
    clustered_outliers_network,
    colinear_network,
    grid_network,
    random_query_array,
    random_query_points,
    ring_network,
    two_station_network,
    uniform_random_network,
)
from .scenarios import (
    DEFAULT_LOCATOR_SWEEP,
    SCENARIOS,
    Scenario,
    locator_sweep_names,
    point_location_networks,
    scenario,
    scenario_names,
    sharding_networks,
    theorem_verification_networks,
)

__all__ = [
    "DEFAULT_LOCATOR_SWEEP",
    "SCENARIOS",
    "Scenario",
    "clustered_network",
    "clustered_outliers_network",
    "colinear_network",
    "grid_network",
    "locator_sweep_names",
    "point_location_networks",
    "random_query_array",
    "random_query_points",
    "ring_network",
    "scenario",
    "scenario_names",
    "sharding_networks",
    "theorem_verification_networks",
    "two_station_network",
    "uniform_random_network",
]
