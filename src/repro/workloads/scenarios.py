"""A deterministic catalogue of benchmark scenarios.

Each scenario bundles a network family with the parameters the benchmark
harness sweeps over, so that benchmarks, examples and EXPERIMENTS.md always
talk about the same configurations.  Scenarios are intentionally small enough
to run on a laptop in seconds — the paper's results are structural, not about
absolute scale.

Besides the static catalogue, this module generates *mobility* scenarios for
the dynamic-network subsystem: :func:`random_waypoint_walk` (stations drift
toward random waypoints) and :func:`churn_schedule` (stations join and
leave).  Both yield :class:`MobilityStep` sequences — each step a mutated
network *plus* the exact :class:`~repro.model.delta.NetworkDelta` that
produced it — ready to drive ``ShardedLocator.updated``,
``QueryService.swap_network`` and ``invalidate_for_delta`` in benchmarks and
closed-loop drivers.  Determinism is by seeded ``numpy`` ``Generator`` only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import NetworkConfigurationError
from ..geometry.point import Point
from ..model.delta import NetworkDelta, add_station, remove_station
from ..model.network import WirelessNetwork
from ..model.station import Station
from .generators import (
    clustered_network,
    clustered_outliers_network,
    colinear_network,
    grid_network,
    ring_network,
    uniform_random_network,
)

__all__ = [
    "Scenario",
    "SCENARIOS",
    "DEFAULT_LOCATOR_SWEEP",
    "MobilityStep",
    "churn_schedule",
    "locator_sweep_names",
    "random_waypoint_walk",
    "scenario",
    "scenario_names",
    "theorem_verification_networks",
    "point_location_networks",
    "sharding_networks",
]


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible network configuration."""

    name: str
    description: str
    build: Callable[[], WirelessNetwork]

    def network(self) -> WirelessNetwork:
        """Materialise the scenario's network."""
        return self.build()


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            name="small-random",
            description="5 uniformly random stations in a 10x10 box, beta=3",
            build=lambda: uniform_random_network(
                5, side=10.0, minimum_separation=1.5, noise=0.01, beta=3.0, seed=11
            ),
        ),
        Scenario(
            name="medium-random",
            description="12 uniformly random stations in a 20x20 box, beta=4",
            build=lambda: uniform_random_network(
                12, side=20.0, minimum_separation=2.0, noise=0.005, beta=4.0, seed=23
            ),
        ),
        Scenario(
            name="large-random",
            description="30 uniformly random stations in a 40x40 box, beta=6",
            build=lambda: uniform_random_network(
                30, side=40.0, minimum_separation=2.5, noise=0.002, beta=6.0, seed=37
            ),
        ),
        Scenario(
            name="clustered",
            description="3 clusters of 4 stations each (dense interference), beta=3",
            build=lambda: clustered_network(
                3, 4, side=24.0, cluster_spread=1.5, noise=0.0, beta=3.0, seed=5
            ),
        ),
        Scenario(
            name="ring",
            description="8 stations on a ring of radius 6, beta=2",
            build=lambda: ring_network(8, radius=6.0, beta=2.0),
        ),
        Scenario(
            name="grid",
            description="3x3 station grid with spacing 3, beta=2.5",
            build=lambda: grid_network(3, 3, spacing=3.0, beta=2.5),
        ),
        Scenario(
            name="colinear",
            description="positive colinear network of 6 stations (Section 4.2.2)",
            build=lambda: colinear_network(6, spacing=2.0, beta=2.0),
        ),
        Scenario(
            name="clustered-outliers",
            description="4 Gaussian clusters of 6 stations plus 8 sparse outliers "
            "in a 40x40 box, beta=3 (skewed spatial distribution for sharding)",
            build=lambda: clustered_outliers_network(
                4,
                6,
                outlier_count=8,
                side=40.0,
                cluster_spread=1.2,
                minimum_separation=0.4,
                noise=0.001,
                beta=3.0,
                seed=17,
            ),
        ),
        Scenario(
            name="textbook-beta",
            description="4 stations with the paper's 'textbook' beta = 6",
            build=lambda: uniform_random_network(
                4, side=12.0, minimum_separation=3.0, noise=0.01, beta=6.0, seed=2
            ),
        ),
    ]
}


def scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    return SCENARIOS[name]


def scenario_names() -> List[str]:
    """Names of every catalogued scenario."""
    return sorted(SCENARIOS)


def theorem_verification_networks() -> List[Tuple[str, WirelessNetwork]]:
    """The scenarios used by the Theorem 1/2 verification benchmarks."""
    names = ["small-random", "clustered", "ring", "grid", "colinear", "textbook-beta"]
    return [(name, SCENARIOS[name].network()) for name in names]


def point_location_networks() -> List[Tuple[str, WirelessNetwork]]:
    """The scenarios used by the Theorem 3 point-location benchmarks."""
    names = ["small-random", "ring", "grid"]
    return [(name, SCENARIOS[name].network()) for name in names]


def sharding_networks() -> List[Tuple[str, WirelessNetwork]]:
    """The scenarios the sharded-locator tests and benchmarks sweep over.

    Deliberately mixes a benign uniform deployment with the skewed
    clustered-outliers one, so both partitioners face empty tiles and
    unbalanced clusters.
    """
    names = ["medium-random", "clustered", "clustered-outliers"]
    return [(name, SCENARIOS[name].network()) for name in names]


#: The canonical by-name locator sweep every harness shares: the exact
#: baselines, the Theorem 3 structure, and a sharded composition of each.
#: Names resolve through :func:`repro.pointlocation.get_locator`, so the
#: sweep automatically covers anything a caller registers under these names.
DEFAULT_LOCATOR_SWEEP: Tuple[str, ...] = (
    "brute-force",
    "voronoi",
    "theorem3",
    "sharded:voronoi",
    "sharded:theorem3",
)


def locator_sweep_names(validate: bool = True) -> List[str]:
    """The default locator-name sweep, optionally validated against the registry."""
    names = list(DEFAULT_LOCATOR_SWEEP)
    if validate:
        from ..pointlocation import get_locator

        for name in names:
            get_locator(name)
    return names


# ---------------------------------------------------------------------------
# Mobility scenarios (dynamic networks)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MobilityStep:
    """One tick of a mobility scenario: the mutated network and its delta.

    The delta is exact by construction (built from the mutators that
    produced ``network``), so consumers never need :func:`diff_networks`.
    """

    network: WirelessNetwork
    delta: NetworkDelta


def _mobility_bounds(
    network: WirelessNetwork, bounds: Optional[Tuple[float, float, float, float]]
) -> Tuple[float, float, float, float]:
    """Resolve the world box stations roam in (default: station bbox)."""
    if bounds is not None:
        x_min, y_min, x_max, y_max = (float(value) for value in bounds)
    else:
        coords = network.coords
        x_min, y_min = coords.min(axis=0)
        x_max, y_max = coords.max(axis=0)
    if not (x_min <= x_max and y_min <= y_max):
        raise NetworkConfigurationError(
            f"degenerate mobility bounds ({x_min}, {y_min}, {x_max}, {y_max})"
        )
    return float(x_min), float(y_min), float(x_max), float(y_max)


def random_waypoint_walk(
    network: WirelessNetwork,
    steps: int,
    *,
    speed: float = 1.0,
    movers: int = 1,
    bounds: Optional[Tuple[float, float, float, float]] = None,
    seed: int = 0,
) -> Iterator[MobilityStep]:
    """Random-waypoint mobility: stations drift toward random targets.

    Every station owns a waypoint drawn uniformly from ``bounds``; each step
    picks ``movers`` distinct stations (uniformly, without replacement) and
    advances them toward their waypoints by at most ``speed``, drawing a new
    waypoint on arrival.  Yields ``steps`` :class:`MobilityStep` values whose
    deltas are pure index-preserving moves — the friendliest case for
    incremental consumers (shard-selective rebuilds, tile re-keying).

    Deterministic for a given ``seed`` (single ``numpy`` ``Generator``).
    """
    if speed <= 0.0:
        raise NetworkConfigurationError(f"waypoint speed must be positive, got {speed}")
    if not 1 <= movers <= len(network):
        raise NetworkConfigurationError(
            f"movers must be in [1, {len(network)}], got {movers}"
        )
    x_min, y_min, x_max, y_max = _mobility_bounds(network, bounds)
    rng = np.random.default_rng(seed)

    def draw_waypoint() -> np.ndarray:
        return np.array(
            [rng.uniform(x_min, x_max), rng.uniform(y_min, y_max)], dtype=float
        )

    waypoints = [draw_waypoint() for _ in range(len(network))]
    for _ in range(steps):
        chosen = rng.choice(len(network), size=movers, replace=False)
        moved: List[Tuple[int, int]] = []
        mutated = network
        for index in sorted(int(i) for i in chosen):
            position = np.array(
                [mutated.stations[index].x, mutated.stations[index].y], dtype=float
            )
            offset = waypoints[index] - position
            distance = float(np.hypot(offset[0], offset[1]))
            if distance <= speed:
                target = waypoints[index]
                waypoints[index] = draw_waypoint()
            else:
                target = position + offset * (speed / distance)
            if distance == 0.0:
                continue
            mutated = mutated.with_station_moved(
                index, Point(float(target[0]), float(target[1]))
            )
            moved.append((index, index))
        delta = NetworkDelta(
            moved=tuple(moved), old_count=len(network), new_count=len(mutated)
        )
        network = mutated
        yield MobilityStep(network=network, delta=delta)


def churn_schedule(
    network: WirelessNetwork,
    steps: int,
    *,
    join_probability: float = 0.5,
    minimum_stations: int = 2,
    bounds: Optional[Tuple[float, float, float, float]] = None,
    seed: int = 0,
) -> Iterator[MobilityStep]:
    """Join/leave churn: each step one station arrives or departs.

    A step joins a fresh station (uniform location in ``bounds``, power
    matching the uniform network power so the Theorem-4.1 regime survives)
    with probability ``join_probability``, otherwise removes a uniformly
    chosen station — except that the population never drops below
    ``minimum_stations`` (a blocked leave becomes a join).

    Deterministic for a given ``seed`` (single ``numpy`` ``Generator``).
    """
    if not 0.0 <= join_probability <= 1.0:
        raise NetworkConfigurationError(
            f"join_probability must be in [0, 1], got {join_probability}"
        )
    if minimum_stations < 1:
        raise NetworkConfigurationError(
            f"minimum_stations must be at least 1, got {minimum_stations}"
        )
    if len(network) < minimum_stations:
        raise NetworkConfigurationError(
            f"network has {len(network)} stations, below the "
            f"minimum_stations floor of {minimum_stations}"
        )
    x_min, y_min, x_max, y_max = _mobility_bounds(network, bounds)
    power = network.stations[0].power if len(network) else 1.0
    rng = np.random.default_rng(seed)
    joined = 0
    for _ in range(steps):
        join = rng.random() < join_probability or len(network) <= minimum_stations
        if join:
            joined += 1
            station = Station(
                location=Point(
                    float(rng.uniform(x_min, x_max)), float(rng.uniform(y_min, y_max))
                ),
                power=power,
                name=f"churn-{joined}",
            )
            network, delta = add_station(network, station)
        else:
            index = int(rng.integers(len(network)))
            network, delta = remove_station(network, index)
        yield MobilityStep(network=network, delta=delta)
