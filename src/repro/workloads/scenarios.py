"""A deterministic catalogue of benchmark scenarios.

Each scenario bundles a network family with the parameters the benchmark
harness sweeps over, so that benchmarks, examples and EXPERIMENTS.md always
talk about the same configurations.  Scenarios are intentionally small enough
to run on a laptop in seconds — the paper's results are structural, not about
absolute scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..geometry.point import Point
from ..model.network import WirelessNetwork
from .generators import (
    clustered_network,
    clustered_outliers_network,
    colinear_network,
    grid_network,
    ring_network,
    uniform_random_network,
)

__all__ = [
    "Scenario",
    "SCENARIOS",
    "DEFAULT_LOCATOR_SWEEP",
    "locator_sweep_names",
    "scenario",
    "scenario_names",
    "theorem_verification_networks",
    "point_location_networks",
    "sharding_networks",
]


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible network configuration."""

    name: str
    description: str
    build: Callable[[], WirelessNetwork]

    def network(self) -> WirelessNetwork:
        """Materialise the scenario's network."""
        return self.build()


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            name="small-random",
            description="5 uniformly random stations in a 10x10 box, beta=3",
            build=lambda: uniform_random_network(
                5, side=10.0, minimum_separation=1.5, noise=0.01, beta=3.0, seed=11
            ),
        ),
        Scenario(
            name="medium-random",
            description="12 uniformly random stations in a 20x20 box, beta=4",
            build=lambda: uniform_random_network(
                12, side=20.0, minimum_separation=2.0, noise=0.005, beta=4.0, seed=23
            ),
        ),
        Scenario(
            name="large-random",
            description="30 uniformly random stations in a 40x40 box, beta=6",
            build=lambda: uniform_random_network(
                30, side=40.0, minimum_separation=2.5, noise=0.002, beta=6.0, seed=37
            ),
        ),
        Scenario(
            name="clustered",
            description="3 clusters of 4 stations each (dense interference), beta=3",
            build=lambda: clustered_network(
                3, 4, side=24.0, cluster_spread=1.5, noise=0.0, beta=3.0, seed=5
            ),
        ),
        Scenario(
            name="ring",
            description="8 stations on a ring of radius 6, beta=2",
            build=lambda: ring_network(8, radius=6.0, beta=2.0),
        ),
        Scenario(
            name="grid",
            description="3x3 station grid with spacing 3, beta=2.5",
            build=lambda: grid_network(3, 3, spacing=3.0, beta=2.5),
        ),
        Scenario(
            name="colinear",
            description="positive colinear network of 6 stations (Section 4.2.2)",
            build=lambda: colinear_network(6, spacing=2.0, beta=2.0),
        ),
        Scenario(
            name="clustered-outliers",
            description="4 Gaussian clusters of 6 stations plus 8 sparse outliers "
            "in a 40x40 box, beta=3 (skewed spatial distribution for sharding)",
            build=lambda: clustered_outliers_network(
                4,
                6,
                outlier_count=8,
                side=40.0,
                cluster_spread=1.2,
                minimum_separation=0.4,
                noise=0.001,
                beta=3.0,
                seed=17,
            ),
        ),
        Scenario(
            name="textbook-beta",
            description="4 stations with the paper's 'textbook' beta = 6",
            build=lambda: uniform_random_network(
                4, side=12.0, minimum_separation=3.0, noise=0.01, beta=6.0, seed=2
            ),
        ),
    ]
}


def scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    return SCENARIOS[name]


def scenario_names() -> List[str]:
    """Names of every catalogued scenario."""
    return sorted(SCENARIOS)


def theorem_verification_networks() -> List[Tuple[str, WirelessNetwork]]:
    """The scenarios used by the Theorem 1/2 verification benchmarks."""
    names = ["small-random", "clustered", "ring", "grid", "colinear", "textbook-beta"]
    return [(name, SCENARIOS[name].network()) for name in names]


def point_location_networks() -> List[Tuple[str, WirelessNetwork]]:
    """The scenarios used by the Theorem 3 point-location benchmarks."""
    names = ["small-random", "ring", "grid"]
    return [(name, SCENARIOS[name].network()) for name in names]


def sharding_networks() -> List[Tuple[str, WirelessNetwork]]:
    """The scenarios the sharded-locator tests and benchmarks sweep over.

    Deliberately mixes a benign uniform deployment with the skewed
    clustered-outliers one, so both partitioners face empty tiles and
    unbalanced clusters.
    """
    names = ["medium-random", "clustered", "clustered-outliers"]
    return [(name, SCENARIOS[name].network()) for name in names]


#: The canonical by-name locator sweep every harness shares: the exact
#: baselines, the Theorem 3 structure, and a sharded composition of each.
#: Names resolve through :func:`repro.pointlocation.get_locator`, so the
#: sweep automatically covers anything a caller registers under these names.
DEFAULT_LOCATOR_SWEEP: Tuple[str, ...] = (
    "brute-force",
    "voronoi",
    "theorem3",
    "sharded:voronoi",
    "sharded:theorem3",
)


def locator_sweep_names(validate: bool = True) -> List[str]:
    """The default locator-name sweep, optionally validated against the registry."""
    names = list(DEFAULT_LOCATOR_SWEEP)
    if validate:
        from ..pointlocation import get_locator

        for name in names:
            get_locator(name)
    return names
