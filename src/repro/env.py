"""The declared environment-knob registry — the one place ``os.environ`` is read.

Every runtime knob the package honours is declared here as an
:class:`EnvKnob` (name, default, description) and read through
:func:`read_knob`.  Centralising the reads keeps configuration enumerable —
an operator, a doc table, or the coming adaptive-control layer can iterate
:data:`KNOBS` instead of grepping for ``environ`` — and reprolint rule
RL009 enforces that no other module under ``src/repro`` touches
``os.environ`` / ``os.getenv``.

Benchmark-harness knobs (``REPRO_BENCH_*``) are declared too so the
inventory is complete, although the ``benchmarks/`` scripts that read them
live outside the linted tree.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from .exceptions import ReproError

__all__ = [
    "EnvKnob",
    "KNOBS",
    "ENGINE_CHUNK_BYTES",
    "ENGINE_WORKERS",
    "SERVICE_DRAIN_TIMEOUT",
    "METRICS_INTERVAL",
    "CONTROL_WAIT_TARGET",
    "CONTROL_BUDGET_CAP",
    "BENCH_QUICK",
    "BENCH_MIN_SPEEDUP",
    "read_knob",
    "read_bool_knob",
    "read_float_knob",
]

#: Byte budget for one engine call's kernel temporaries (see
#: :func:`repro.engine.batch.chunk_byte_budget`).
ENGINE_CHUNK_BYTES = "REPRO_ENGINE_CHUNK_BYTES"

#: Worker-process count of the multiprocess engine backend.
ENGINE_WORKERS = "REPRO_ENGINE_WORKERS"

#: Seconds a network swap waits for the previous epoch's batches to drain.
SERVICE_DRAIN_TIMEOUT = "REPRO_SERVICE_DRAIN_TIMEOUT"

#: Default collection interval, in seconds, of a metrics hub.
METRICS_INTERVAL = "REPRO_METRICS_INTERVAL"

#: Seal-wait p99 SLO (seconds) of the adaptive latency-budget controller.
CONTROL_WAIT_TARGET = "REPRO_CONTROL_WAIT_TARGET"

#: Upper bound (seconds) the adaptive latency budget may grow toward.
CONTROL_BUDGET_CAP = "REPRO_CONTROL_BUDGET_CAP"

#: Shrinks benchmark workloads for CI smoke runs.
BENCH_QUICK = "REPRO_BENCH_QUICK"

#: Overrides the calibrated speedup floors of the benchmark gates.
BENCH_MIN_SPEEDUP = "REPRO_BENCH_MIN_SPEEDUP"


@dataclass(frozen=True)
class EnvKnob:
    """One declared environment knob."""

    name: str
    default: str
    description: str


_DECLARED: Tuple[EnvKnob, ...] = (
    EnvKnob(
        name=ENGINE_CHUNK_BYTES,
        default="67108864",
        description=(
            "byte budget for one engine call's (n_stations, chunk) kernel "
            "temporaries; batch entry points tile the point axis to fit it"
        ),
    ),
    EnvKnob(
        name=ENGINE_WORKERS,
        default="os.cpu_count()",
        description="worker-process count of the multiprocess engine backend",
    ),
    EnvKnob(
        name=SERVICE_DRAIN_TIMEOUT,
        default="30",
        description=(
            "seconds QueryService.swap_network waits for the previous "
            "epoch's in-flight batches to drain before raising"
        ),
    ),
    EnvKnob(
        name=METRICS_INTERVAL,
        default="0.25",
        description=(
            "seconds between two metrics-hub collections (each registered "
            "source is snapshotted and fanned out to every sink per tick)"
        ),
    ),
    EnvKnob(
        name=CONTROL_WAIT_TARGET,
        default="0.02",
        description=(
            "seal-wait p99 SLO, in seconds, of the adaptive latency-budget "
            "controller: a budget whose observed wait p99 exceeds it is "
            "multiplicatively shrunk"
        ),
    ),
    EnvKnob(
        name=CONTROL_BUDGET_CAP,
        default="0.02",
        description=(
            "cap, in seconds, the adaptive latency budget grows toward "
            "under pressure (additive increase never exceeds it)"
        ),
    ),
    EnvKnob(
        name=BENCH_QUICK,
        default="",
        description=(
            "truthy ('1'/'true'/'yes'/'on') shrinks benchmark workloads "
            "(CI smoke mode); ''/'0'/'false'/'no'/'off' run at full scale"
        ),
    ),
    EnvKnob(
        name=BENCH_MIN_SPEEDUP,
        default="",
        description=(
            "overrides the calibrated minimum-speedup floors of the "
            "benchmark gates (CI runners are slower than the calibration "
            "hardware)"
        ),
    ),
)

#: Name -> declaration for every knob the package honours.
KNOBS: Dict[str, EnvKnob] = {knob.name: knob for knob in _DECLARED}


def read_knob(name: str, default: str = "") -> str:
    """The raw environment value of a *declared* knob (``default`` if unset).

    Reading an undeclared name raises: a knob that is not in :data:`KNOBS`
    is invisible to every inventory built on it, which is exactly the
    configuration drift this module exists to prevent.
    """
    if name not in KNOBS:
        raise ReproError(
            f"undeclared environment knob {name!r}; declare it in "
            f"repro.env.KNOBS (declared: {sorted(KNOBS)})"
        )
    return os.environ.get(name, default)


#: Spellings that mean "off" for a boolean flag knob (case-insensitive).
FALSE_TOKENS: FrozenSet[str] = frozenset({"", "0", "false", "no", "off"})


def read_bool_knob(name: str) -> bool:
    """A declared *flag* knob as a boolean.

    ``""``, ``"0"``, ``"false"``, ``"no"`` and ``"off"`` (any case,
    surrounding whitespace ignored) are **False**; everything else is True.
    This is the one boolean parser for the whole tree: ``bool(read_knob(
    ...))`` would treat ``REPRO_BENCH_QUICK=0`` as *enabled*, which is
    exactly the quick-mode mis-parse this function exists to prevent.
    """
    return read_knob(name).strip().lower() not in FALSE_TOKENS


def read_float_knob(name: str, default: float) -> float:
    """A declared knob as a float; warn and fall back on unparsable values.

    Mirrors the lenient numeric-knob idiom of
    :func:`repro.engine.batch.chunk_byte_budget`: an unset or empty knob is
    silently ``default``, a malformed or non-positive one warns (so typos
    are visible) and still yields ``default`` — configuration mistakes must
    never take down a serving process.
    """
    raw = read_knob(name)
    if raw.strip():
        try:
            configured = float(raw)
        except ValueError:
            configured = float("nan")
        if configured > 0.0:
            return configured
        warnings.warn(
            f"ignoring invalid {name}={raw!r} (expected a positive number); "
            f"using {default}",
            stacklevel=2,
        )
    return default
