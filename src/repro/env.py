"""The declared environment-knob registry — the one place ``os.environ`` is read.

Every runtime knob the package honours is declared here as an
:class:`EnvKnob` (name, default, description) and read through
:func:`read_knob`.  Centralising the reads keeps configuration enumerable —
an operator, a doc table, or the coming adaptive-control layer can iterate
:data:`KNOBS` instead of grepping for ``environ`` — and reprolint rule
RL009 enforces that no other module under ``src/repro`` touches
``os.environ`` / ``os.getenv``.

Benchmark-harness knobs (``REPRO_BENCH_*``) are declared too so the
inventory is complete, although the ``benchmarks/`` scripts that read them
live outside the linted tree.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

from .exceptions import ReproError

__all__ = [
    "EnvKnob",
    "KNOBS",
    "ENGINE_CHUNK_BYTES",
    "ENGINE_WORKERS",
    "SERVICE_DRAIN_TIMEOUT",
    "BENCH_QUICK",
    "BENCH_MIN_SPEEDUP",
    "read_knob",
]

#: Byte budget for one engine call's kernel temporaries (see
#: :func:`repro.engine.batch.chunk_byte_budget`).
ENGINE_CHUNK_BYTES = "REPRO_ENGINE_CHUNK_BYTES"

#: Worker-process count of the multiprocess engine backend.
ENGINE_WORKERS = "REPRO_ENGINE_WORKERS"

#: Seconds a network swap waits for the previous epoch's batches to drain.
SERVICE_DRAIN_TIMEOUT = "REPRO_SERVICE_DRAIN_TIMEOUT"

#: Shrinks benchmark workloads for CI smoke runs.
BENCH_QUICK = "REPRO_BENCH_QUICK"

#: Overrides the calibrated speedup floors of the benchmark gates.
BENCH_MIN_SPEEDUP = "REPRO_BENCH_MIN_SPEEDUP"


@dataclass(frozen=True)
class EnvKnob:
    """One declared environment knob."""

    name: str
    default: str
    description: str


_DECLARED: Tuple[EnvKnob, ...] = (
    EnvKnob(
        name=ENGINE_CHUNK_BYTES,
        default="67108864",
        description=(
            "byte budget for one engine call's (n_stations, chunk) kernel "
            "temporaries; batch entry points tile the point axis to fit it"
        ),
    ),
    EnvKnob(
        name=ENGINE_WORKERS,
        default="os.cpu_count()",
        description="worker-process count of the multiprocess engine backend",
    ),
    EnvKnob(
        name=SERVICE_DRAIN_TIMEOUT,
        default="30",
        description=(
            "seconds QueryService.swap_network waits for the previous "
            "epoch's in-flight batches to drain before raising"
        ),
    ),
    EnvKnob(
        name=BENCH_QUICK,
        default="",
        description="non-empty shrinks benchmark workloads (CI smoke mode)",
    ),
    EnvKnob(
        name=BENCH_MIN_SPEEDUP,
        default="",
        description=(
            "overrides the calibrated minimum-speedup floors of the "
            "benchmark gates (CI runners are slower than the calibration "
            "hardware)"
        ),
    ),
)

#: Name -> declaration for every knob the package honours.
KNOBS: Dict[str, EnvKnob] = {knob.name: knob for knob in _DECLARED}


def read_knob(name: str, default: str = "") -> str:
    """The raw environment value of a *declared* knob (``default`` if unset).

    Reading an undeclared name raises: a knob that is not in :data:`KNOBS`
    is invisible to every inventory built on it, which is exactly the
    configuration drift this module exists to prevent.
    """
    if name not in KNOBS:
        raise ReproError(
            f"undeclared environment knob {name!r}; declare it in "
            f"repro.env.KNOBS (declared: {sorted(KNOBS)})"
        )
    return os.environ.get(name, default)
