"""The reception polynomial ``H(x, y)`` of a station (eq. (2) of the paper).

For a network with stations ``s_i = (a_i, b_i)``, powers ``psi_i``, noise
``N`` and threshold ``beta`` (and path loss ``alpha = 2``), station ``s_0`` is
heard at ``(x, y)`` if and only if

    H(x, y) = beta * sum_{i>0} psi_i * prod_{j != i} d_j^2(x, y)
              + beta * N * prod_j d_j^2(x, y)
              - psi_0 * prod_{j != 0} d_j^2(x, y)            <= 0,

(the paper's eq. (2) prints the noise term without the factor ``beta``; the
factor is required for ``H <= 0`` to be equivalent to ``SINR >= beta`` and is
immaterial in the paper's analysis, which treats the noisy case by reduction
to ``N = 0``)

where ``d_j^2(x, y) = (a_j - x)^2 + (b_j - y)^2``.  The polynomial has degree
``2n`` (``2n - 2`` when ``N = 0``) and its zero set is exactly the boundary of
the reception zone ``H_0``.

Expanding ``H`` into monomials is wasteful — everything the paper does with it
only needs evaluation and restriction to lines/segments — so this module keeps
the *factored* form (a list of quadratics) and expands only the univariate
restrictions, which have degree ``2n`` in the line parameter and are cheap to
build as products of quadratics in ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import AlgebraError
from ..geometry.point import Point
from .bivariate import BivariatePolynomial, squared_distance_polynomial
from .polynomial import Polynomial
from .sturm import SturmSequence, count_distinct_real_roots_in_interval

__all__ = ["ReceptionPolynomial"]


@dataclass(frozen=True)
class ReceptionPolynomial:
    """The reception polynomial of one station in a network with ``alpha = 2``.

    Attributes:
        target_index: index of the station whose reception zone is described.
        stations: all station locations.
        powers: transmission power of every station (same order).
        noise: background noise ``N >= 0``.
        beta: reception threshold.
    """

    target_index: int
    stations: Tuple[Point, ...]
    powers: Tuple[float, ...]
    noise: float
    beta: float

    def __init__(
        self,
        target_index: int,
        stations: Sequence[Point],
        powers: Sequence[float],
        noise: float,
        beta: float,
    ):
        if len(stations) < 2:
            raise AlgebraError("a reception polynomial needs at least two stations")
        if len(stations) != len(powers):
            raise AlgebraError("stations and powers must have the same length")
        if not 0 <= target_index < len(stations):
            raise AlgebraError("target_index out of range")
        if noise < 0:
            raise AlgebraError("background noise must be non-negative")
        if beta <= 0:
            raise AlgebraError("reception threshold must be positive")
        object.__setattr__(self, "target_index", int(target_index))
        object.__setattr__(self, "stations", tuple(stations))
        object.__setattr__(self, "powers", tuple(float(p) for p in powers))
        object.__setattr__(self, "noise", float(noise))
        object.__setattr__(self, "beta", float(beta))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def station_count(self) -> int:
        return len(self.stations)

    def degree(self) -> int:
        """Degree of ``H``: ``2n`` in general, ``2n - 2`` without noise."""
        n = len(self.stations)
        return 2 * n if self.noise > 0.0 else 2 * n - 2

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, x: float, y: float) -> float:
        """Evaluate ``H(x, y)`` (negative or zero means the station is heard)."""
        squared_distances = [
            (s.x - x) ** 2 + (s.y - y) ** 2 for s in self.stations
        ]
        return self._combine(squared_distances)

    def evaluate_at_point(self, point: Point) -> float:
        """Evaluate at a geometric point."""
        return self(point.x, point.y)

    def is_received(self, point: Point) -> bool:
        """True if the target station is heard at ``point`` (``H <= 0``).

        This matches the paper's remark that the polynomial condition holds
        even at station locations, where the SINR ratio itself is undefined.
        """
        return self.evaluate_at_point(point) <= 0.0

    def _combine(self, squared_distances: Sequence[float]) -> float:
        """Assemble H from the per-station squared distances (floats)."""
        target = self.target_index
        n = len(squared_distances)

        # prod over all j != i, computed via prefix/suffix products so the
        # evaluation stays O(n) rather than O(n^2).
        prefix = [1.0] * (n + 1)
        for i in range(n):
            prefix[i + 1] = prefix[i] * squared_distances[i]
        suffix = [1.0] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1] * squared_distances[i]

        def product_excluding(i: int) -> float:
            return prefix[i] * suffix[i + 1]

        interference_term = sum(
            self.powers[i] * product_excluding(i)
            for i in range(n)
            if i != target
        )
        noise_term = self.beta * self.noise * prefix[n]
        signal_term = self.powers[target] * product_excluding(target)
        return self.beta * interference_term + noise_term - signal_term

    # ------------------------------------------------------------------
    # Restrictions
    # ------------------------------------------------------------------
    def restrict_to_parametric_line(
        self, anchor: Point, direction: Point
    ) -> Polynomial:
        """The univariate polynomial ``t -> H(anchor + t * direction)``.

        Built directly from the factored form: each squared distance becomes a
        quadratic in ``t`` and the products are expanded with prefix/suffix
        polynomial products (``O(n^2)`` coefficient work overall).
        """
        quadratics = [
            _squared_distance_along_line(station, anchor, direction)
            for station in self.stations
        ]
        n = len(quadratics)
        target = self.target_index

        prefix: List[Polynomial] = [Polynomial.constant(1.0)] * (n + 1)
        for i in range(n):
            prefix[i + 1] = prefix[i] * quadratics[i]
        suffix: List[Polynomial] = [Polynomial.constant(1.0)] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix[i] = suffix[i + 1] * quadratics[i]

        def product_excluding(i: int) -> Polynomial:
            return prefix[i] * suffix[i + 1]

        interference = Polynomial.zero()
        for i in range(n):
            if i == target:
                continue
            interference = interference + product_excluding(i) * self.powers[i]
        noise_term = prefix[n] * (self.beta * self.noise)
        signal_term = product_excluding(target) * self.powers[target]
        return interference * self.beta + noise_term - signal_term

    def restrict_to_segment(self, start: Point, end: Point) -> Polynomial:
        """Restriction to the segment ``start end`` parametrised on ``[0, 1]``."""
        return self.restrict_to_parametric_line(start, end - start)

    def restrict_to_horizontal_line(self, y: float) -> Polynomial:
        """Restriction to the horizontal line at height ``y`` (parameter = x).

        This is the restriction used throughout Section 3.2, where the line is
        normalised to ``y = 1``.
        """
        return self.restrict_to_parametric_line(Point(0.0, y), Point(1.0, 0.0))

    # ------------------------------------------------------------------
    # Root counting on segments (the paper's segment test primitive)
    # ------------------------------------------------------------------
    def count_boundary_crossings(self, start: Point, end: Point) -> int:
        """Distinct boundary points of the reception zone on the segment.

        Applies Sturm's condition to the restriction of ``H`` to the segment,
        counting distinct real roots in ``(0, 1]``, and adds one if the start
        point itself lies exactly on the boundary.  For convex zones the
        result is 0, 1 or 2 (Lemma 2.1).
        """
        restriction = self.restrict_to_segment(start, end)
        if restriction.is_zero(tolerance=1e-15):
            return 0
        interior = count_distinct_real_roots_in_interval(restriction, 0.0, 1.0)
        starts_on_boundary = abs(restriction(0.0)) <= 1e-12 * max(
            restriction.l2_norm(), 1.0
        )
        return interior + (1 if starts_on_boundary else 0)

    def sturm_sequence_on_segment(self, start: Point, end: Point) -> SturmSequence:
        """The Sturm sequence of the restriction of ``H`` to a segment."""
        return SturmSequence.of(self.restrict_to_segment(start, end))

    # ------------------------------------------------------------------
    # Expansion (small instances only)
    # ------------------------------------------------------------------
    def expanded(self) -> BivariatePolynomial:
        """Fully expanded bivariate form of ``H`` (exponential-free but dense).

        Only intended for small networks (tests, figures); the factored form
        is what the algorithms use.
        """
        n = len(self.stations)
        target = self.target_index
        quadratics = [squared_distance_polynomial(s) for s in self.stations]

        def product_excluding(i: int) -> BivariatePolynomial:
            result = BivariatePolynomial.constant(1.0)
            for j in range(n):
                if j != i:
                    result = result * quadratics[j]
            return result

        interference = BivariatePolynomial.zero()
        for i in range(n):
            if i == target:
                continue
            interference = interference + product_excluding(i) * self.powers[i]
        full_product = BivariatePolynomial.constant(1.0)
        for quadratic in quadratics:
            full_product = full_product * quadratic
        return (
            interference * self.beta
            + full_product * (self.beta * self.noise)
            - product_excluding(target) * self.powers[target]
        )


def _squared_distance_along_line(
    station: Point, anchor: Point, direction: Point
) -> Polynomial:
    """``t -> (a - x(t))^2 + (b - y(t))^2`` for the line ``anchor + t*direction``."""
    # x(t) = anchor.x + t*dx, so a - x(t) = (a - anchor.x) - t*dx.
    cx = station.x - anchor.x
    cy = station.y - anchor.y
    dx = direction.x
    dy = direction.y
    constant = cx * cx + cy * cy
    linear = -2.0 * (cx * dx + cy * dy)
    quadratic = dx * dx + dy * dy
    return Polynomial([constant, linear, quadratic])
