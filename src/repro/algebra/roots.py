"""Closed-form root finding and discriminants for low-degree polynomials.

Section 3.2 of the paper uses the discriminant of a cubic (the derivative of
the quartic restriction ``H(x)``) to prove Proposition 3.4: when the
discriminant of ``H'(x)`` is negative, ``H'`` has a single real root, so
``H`` has at most two distinct real roots.  Section 4.2.1 solves a quadratic
explicitly to obtain the one-dimensional reception interval ``[mu_l, mu_r]``.

This module provides those tools: discriminants of cubics and quartics,
closed-form real-root computation for degrees up to two, and a Durand–Kerner
style fallback (via ``numpy.roots``) for higher degrees, used only by tests to
cross-check the Sturm machinery.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import AlgebraError
from .polynomial import Polynomial

__all__ = [
    "real_roots_of_quadratic",
    "real_roots_of_linear",
    "cubic_discriminant",
    "cubic_has_single_real_root",
    "quartic_depressed_form",
    "numeric_real_roots",
]


def real_roots_of_linear(constant: float, slope: float) -> List[float]:
    """Real roots of ``constant + slope * x``."""
    if slope == 0.0:
        return []
    return [-constant / slope]


def real_roots_of_quadratic(c0: float, c1: float, c2: float) -> List[float]:
    """Distinct real roots of ``c0 + c1*x + c2*x^2`` in increasing order.

    Degenerates gracefully to the linear case when ``c2 == 0``.
    """
    if c2 == 0.0:
        return real_roots_of_linear(c0, c1)
    discriminant = c1 * c1 - 4.0 * c2 * c0
    if discriminant < 0.0:
        return []
    if discriminant == 0.0:
        return [-c1 / (2.0 * c2)]
    sqrt_disc = math.sqrt(discriminant)
    # Numerically stable form: compute the larger-magnitude root first.
    if c1 >= 0.0:
        q = -(c1 + sqrt_disc) / 2.0
    else:
        q = -(c1 - sqrt_disc) / 2.0
    roots = sorted({q / c2, c0 / q if q != 0.0 else -c1 / (2.0 * c2)})
    return roots


def cubic_discriminant(c0: float, c1: float, c2: float, c3: float) -> float:
    """Discriminant of the cubic ``c3*x^3 + c2*x^2 + c1*x + c0``.

    Matches the expression used in Proposition 3.4:
    ``c1^2 c2^2 - 4 c0 c2^3 - 4 c1^3 c3 + 18 c0 c1 c2 c3 - 27 c0^2 c3^2``.
    A negative discriminant means exactly one real root.
    """
    return (
        c1 * c1 * c2 * c2
        - 4.0 * c0 * c2 ** 3
        - 4.0 * c1 ** 3 * c3
        + 18.0 * c0 * c1 * c2 * c3
        - 27.0 * c0 * c0 * c3 * c3
    )


def cubic_has_single_real_root(c0: float, c1: float, c2: float, c3: float) -> bool:
    """True if the cubic has exactly one real root (negative discriminant).

    A zero discriminant (repeated roots) returns False; the caller decides how
    to treat the boundary case.
    """
    if c3 == 0.0:
        raise AlgebraError("cubic_has_single_real_root() requires a true cubic")
    return cubic_discriminant(c0, c1, c2, c3) < 0.0


def quartic_depressed_form(
    c0: float, c1: float, c2: float, c3: float, c4: float
) -> Tuple[float, float, float, float]:
    """Depress the quartic: substitute ``x = z - c3/(4 c4)``.

    Returns ``(shift, p, q, r)`` such that the original quartic equals
    ``c4 * (z^4 + p z^2 + q z + r)`` with ``x = z + shift``.  The convexity
    proof performs the analogous recentring around ``r_bar``, the vertex of
    the interference parabola ``J(x)``.
    """
    if c4 == 0.0:
        raise AlgebraError("quartic_depressed_form() requires degree exactly four")
    shift = -c3 / (4.0 * c4)
    # Expand c4*(z+shift)^4 + c3*(z+shift)^3 + ... and divide by c4.
    poly = Polynomial([c0, c1, c2, c3, c4]).shifted(shift)
    scaled = poly * (1.0 / c4)
    return (shift, scaled[2], scaled[1], scaled[0])


def numeric_real_roots(
    polynomial: Polynomial, imaginary_tolerance: float = 1e-7
) -> List[float]:
    """All real roots of ``polynomial`` computed via the companion matrix.

    Used by tests and by diagram tracing as a cross-check of the Sturm-based
    machinery.  Roots whose imaginary part is below ``imaginary_tolerance``
    (relative to their magnitude) are projected onto the real axis; the
    returned list is sorted and may contain near-duplicates for multiple
    roots.
    """
    coefficients = list(polynomial.coefficients)
    if len(coefficients) == 1:
        return []
    # numpy.roots expects descending order.
    roots = np.roots(list(reversed(coefficients)))
    real_roots: List[float] = []
    for root in roots:
        scale = max(1.0, abs(root))
        if abs(root.imag) <= imaginary_tolerance * scale:
            real_roots.append(float(root.real))
    return sorted(real_roots)
