"""Sturm sequences and Sturm's condition (Theorem 3.6 of the paper).

Given a real polynomial ``P``, the Sturm sequence is ``P_0 = P``,
``P_1 = P'`` and ``P_i = -rem(P_{i-2} / P_{i-1})`` until the remainder
vanishes.  Sturm's condition (attributed to Jacques Sturm, 1829) states that
for reals ``a < b`` that are not roots of ``P``, the number of *distinct* real
roots of ``P`` in ``(a, b)`` equals ``SC_P(a) - SC_P(b)``, where ``SC_P(t)``
counts sign changes along the evaluated sequence.

The paper uses Sturm's condition twice:

* in the convexity proof (Section 3.2) to show the restriction of the
  reception polynomial to a line has at most two distinct real roots, and
* in the point-location *segment test* (Section 5.1) to count intersections
  of a zone boundary with a grid edge.

This module also provides root isolation and refinement on an interval by
recursive bisection driven by the Sturm root counts, which is how the library
traces zone boundaries exactly where needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import AlgebraError
from .polynomial import Polynomial

__all__ = [
    "SturmSequence",
    "count_real_roots",
    "count_distinct_real_roots_in_interval",
    "isolate_real_roots",
    "refine_root",
]


@dataclass(frozen=True)
class SturmSequence:
    """The Sturm sequence of a polynomial, with sign-change counting."""

    polynomials: Tuple[Polynomial, ...]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def of(polynomial: Polynomial, zero_tolerance: float = 1e-13) -> "SturmSequence":
        """Build the Sturm sequence of ``polynomial``.

        Each remainder is normalised (divided by its largest coefficient
        magnitude) before the next division step; this does not change signs
        or roots but keeps the float arithmetic well conditioned for the
        degree-``2n`` polynomials the SINR model produces.

        Remainders whose coefficients are all below ``zero_tolerance`` (after
        normalisation of their dividend) terminate the sequence.
        """
        if polynomial.is_zero():
            raise AlgebraError("the Sturm sequence of the zero polynomial is undefined")
        sequence: List[Polynomial] = [polynomial.normalized()]
        derivative = polynomial.derivative()
        if derivative.is_zero():
            return SturmSequence(tuple(sequence))
        sequence.append(derivative.normalized())
        while True:
            _, remainder = sequence[-2].divmod(sequence[-1])
            negated = -remainder
            if negated.is_zero(tolerance=zero_tolerance):
                break
            sequence.append(negated.normalized())
            if len(sequence) > polynomial.degree() + 1:
                # Defensive: float noise should never make the sequence longer
                # than degree + 1 entries, but guard against infinite loops.
                break
        return SturmSequence(tuple(sequence))

    # ------------------------------------------------------------------
    # Sign-change counting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.polynomials)

    def signs_at(self, x: float, tolerance: float = 0.0) -> List[int]:
        """Signs of every sequence member at ``x`` (zeros recorded as 0)."""
        return [p.sign_at(x, tolerance=tolerance) for p in self.polynomials]

    def signs_at_plus_infinity(self) -> List[int]:
        """Signs of every sequence member as ``x -> +inf``."""
        return [p.sign_at_plus_infinity() for p in self.polynomials]

    def signs_at_minus_infinity(self) -> List[int]:
        """Signs of every sequence member as ``x -> -inf``."""
        return [p.sign_at_minus_infinity() for p in self.polynomials]

    def sign_changes_at(self, x: float, tolerance: float = 0.0) -> int:
        """``SC_P(x)``: the number of sign changes in the evaluated sequence."""
        return _count_sign_changes(self.signs_at(x, tolerance=tolerance))

    def sign_changes_at_plus_infinity(self) -> int:
        """``SC_P(+inf)``."""
        return _count_sign_changes(self.signs_at_plus_infinity())

    def sign_changes_at_minus_infinity(self) -> int:
        """``SC_P(-inf)``."""
        return _count_sign_changes(self.signs_at_minus_infinity())

    # ------------------------------------------------------------------
    # Root counting
    # ------------------------------------------------------------------
    def count_roots_in_interval(self, low: float, high: float) -> int:
        """Number of distinct real roots in the half-open interval ``(low, high]``.

        Sturm's condition is stated for endpoints that are not roots; the
        implementation nudges endpoints that evaluate to (numerically) zero by
        a tiny relative amount so the count remains well defined.
        """
        if low > high:
            raise AlgebraError("count_roots_in_interval() requires low <= high")
        polynomial = self.polynomials[0]
        low = _nudge_off_root(polynomial, low, direction=-1.0)
        high = _nudge_off_root(polynomial, high, direction=+1.0)
        return max(0, self.sign_changes_at(low) - self.sign_changes_at(high))

    def count_real_roots(self) -> int:
        """Total number of distinct real roots of the polynomial."""
        return max(
            0,
            self.sign_changes_at_minus_infinity()
            - self.sign_changes_at_plus_infinity(),
        )


def _count_sign_changes(signs: Sequence[int]) -> int:
    """Count sign alternations, ignoring zeros (standard Sturm convention)."""
    nonzero = [s for s in signs if s != 0]
    changes = 0
    for previous, current in zip(nonzero, nonzero[1:]):
        if previous != current:
            changes += 1
    return changes


def _nudge_off_root(polynomial: Polynomial, x: float, direction: float) -> float:
    """Move ``x`` slightly in ``direction`` while it is (numerically) a root."""
    scale = max(abs(x), 1.0)
    step = scale * 1e-12
    attempts = 0
    value = x
    while abs(polynomial(value)) <= 1e-14 * max(polynomial.l2_norm(), 1.0) and attempts < 60:
        value += direction * step
        step *= 2.0
        attempts += 1
    return value


def count_real_roots(polynomial: Polynomial) -> int:
    """Number of distinct real roots of ``polynomial`` over all of ``R``."""
    return SturmSequence.of(polynomial).count_real_roots()


def count_distinct_real_roots_in_interval(
    polynomial: Polynomial, low: float, high: float
) -> int:
    """Number of distinct real roots of ``polynomial`` in ``(low, high]``."""
    return SturmSequence.of(polynomial).count_roots_in_interval(low, high)


def isolate_real_roots(
    polynomial: Polynomial,
    low: float,
    high: float,
    max_depth: int = 64,
) -> List[Tuple[float, float]]:
    """Return disjoint subintervals of ``(low, high]`` each containing one root.

    Recursively bisects the interval, using the Sturm sequence to count roots
    per half, until every reported interval contains exactly one distinct real
    root or the recursion depth is exhausted (in which case the interval is
    reported as-is; its width is then ``(high - low) * 2**-max_depth``).
    """
    sequence = SturmSequence.of(polynomial)
    result: List[Tuple[float, float]] = []

    def recurse(a: float, b: float, depth: int) -> None:
        roots = sequence.count_roots_in_interval(a, b)
        if roots == 0:
            return
        if roots == 1 or depth >= max_depth:
            result.append((a, b))
            return
        middle = (a + b) / 2.0
        recurse(a, middle, depth + 1)
        recurse(middle, b, depth + 1)

    recurse(low, high, 0)
    return sorted(result)


def refine_root(
    polynomial: Polynomial,
    low: float,
    high: float,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Refine a root known to lie in ``[low, high]`` by bisection.

    The interval must bracket a sign change of the polynomial; if it does not
    (e.g. a double root), the midpoint of the interval is returned.
    """
    f_low = polynomial(low)
    f_high = polynomial(high)
    if f_low == 0.0:
        return low
    if f_high == 0.0:
        return high
    if f_low * f_high > 0.0:
        return (low + high) / 2.0
    a, b = low, high
    fa = f_low
    for _ in range(max_iterations):
        middle = (a + b) / 2.0
        f_middle = polynomial(middle)
        if abs(f_middle) == 0.0 or (b - a) / 2.0 < tolerance:
            return middle
        if fa * f_middle < 0.0:
            b = middle
        else:
            a = middle
            fa = f_middle
    return (a + b) / 2.0
