"""Real-algebra substrate: polynomials, Sturm sequences, reception polynomials.

This package contains the algebraic machinery behind the paper's convexity
proof (Section 3) and point-location segment test (Section 5): univariate and
bivariate polynomials, Sturm sequences with Sturm's condition for root
counting (Theorem 3.6), closed-form low-degree root formulas and
discriminants, and the factored reception polynomial ``H(x, y)`` of eq. (2).
"""

from .bivariate import BivariatePolynomial, squared_distance_polynomial
from .polynomial import Polynomial
from .reception import ReceptionPolynomial
from .roots import (
    cubic_discriminant,
    cubic_has_single_real_root,
    numeric_real_roots,
    quartic_depressed_form,
    real_roots_of_linear,
    real_roots_of_quadratic,
)
from .sturm import (
    SturmSequence,
    count_distinct_real_roots_in_interval,
    count_real_roots,
    isolate_real_roots,
    refine_root,
)

__all__ = [
    "BivariatePolynomial",
    "Polynomial",
    "ReceptionPolynomial",
    "SturmSequence",
    "count_distinct_real_roots_in_interval",
    "count_real_roots",
    "cubic_discriminant",
    "cubic_has_single_real_root",
    "isolate_real_roots",
    "numeric_real_roots",
    "quartic_depressed_form",
    "real_roots_of_linear",
    "real_roots_of_quadratic",
    "refine_root",
    "squared_distance_polynomial",
]
