"""Univariate polynomials with real coefficients.

The convexity proof (Section 3.2) and the point-location segment test
(Section 5.1) both manipulate univariate polynomials obtained by restricting
the degree-``2n`` reception polynomial to a line or segment: they need
evaluation, differentiation, polynomial division with remainder (for Sturm
sequences), and sign bookkeeping at the interval endpoints and at infinity.

Coefficients are stored densely in *ascending* order (``coefficients[k]`` is
the coefficient of ``x^k``) as plain floats.  To keep Sturm sequences
numerically stable the arithmetic routines normalise and prune near-zero
coefficients relative to the largest coefficient magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..exceptions import AlgebraError

__all__ = ["Polynomial"]

#: Relative magnitude below which a coefficient is treated as zero.
_RELATIVE_EPSILON = 1e-12


def _trimmed(coefficients: Sequence[float]) -> Tuple[float, ...]:
    """Drop trailing (highest-degree) coefficients that are relatively negligible."""
    values = [float(c) for c in coefficients]
    if not values:
        return (0.0,)
    scale = max(abs(c) for c in values)
    if scale == 0.0:
        return (0.0,)
    threshold = scale * _RELATIVE_EPSILON
    last = len(values) - 1
    while last > 0 and abs(values[last]) <= threshold:
        last -= 1
    return tuple(values[: last + 1])


@dataclass(frozen=True)
class Polynomial:
    """A dense univariate polynomial ``c0 + c1*x + ... + cd*x^d``."""

    coefficients: Tuple[float, ...]

    def __init__(self, coefficients: Iterable[float]):
        object.__setattr__(self, "coefficients", _trimmed(list(coefficients)))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "Polynomial":
        """The zero polynomial."""
        return Polynomial([0.0])

    @staticmethod
    def constant(value: float) -> "Polynomial":
        """The constant polynomial ``value``."""
        return Polynomial([value])

    @staticmethod
    def monomial(degree: int, coefficient: float = 1.0) -> "Polynomial":
        """The monomial ``coefficient * x^degree``."""
        if degree < 0:
            raise AlgebraError("monomial degree must be non-negative")
        return Polynomial([0.0] * degree + [coefficient])

    @staticmethod
    def linear(constant: float, slope: float) -> "Polynomial":
        """The polynomial ``constant + slope * x``."""
        return Polynomial([constant, slope])

    @staticmethod
    def from_roots(roots: Sequence[float], leading: float = 1.0) -> "Polynomial":
        """The monic (up to ``leading``) polynomial with the given real roots."""
        result = Polynomial.constant(leading)
        for root in roots:
            result = result * Polynomial([-root, 1.0])
        return result

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree 0 here."""
        return len(self.coefficients) - 1

    def is_zero(self, tolerance: float = 0.0) -> bool:
        """True if every coefficient is (essentially) zero."""
        return all(abs(c) <= tolerance for c in self.coefficients)

    def leading_coefficient(self) -> float:
        """Coefficient of the highest-degree term."""
        return self.coefficients[-1]

    def __getitem__(self, power: int) -> float:
        if 0 <= power < len(self.coefficients):
            return self.coefficients[power]
        return 0.0

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, x: float) -> float:
        """Evaluate by Horner's rule."""
        result = 0.0
        for coefficient in reversed(self.coefficients):
            result = result * x + coefficient
        return result

    def sign_at(self, x: float, tolerance: float = 0.0) -> int:
        """Sign of ``P(x)``: +1, -1, or 0 when ``|P(x)| <= tolerance``."""
        value = self(x)
        if value > tolerance:
            return 1
        if value < -tolerance:
            return -1
        return 0

    def sign_at_plus_infinity(self) -> int:
        """Sign of ``P(x)`` as ``x -> +inf`` (0 only for the zero polynomial)."""
        lead = self.leading_coefficient()
        if lead > 0:
            return 1
        if lead < 0:
            return -1
        return 0

    def sign_at_minus_infinity(self) -> int:
        """Sign of ``P(x)`` as ``x -> -inf``."""
        lead = self.leading_coefficient()
        if lead == 0:
            return 0
        if self.degree() % 2 == 0:
            return 1 if lead > 0 else -1
        return -1 if lead > 0 else 1

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Polynomial | float") -> "Polynomial":
        other_poly = other if isinstance(other, Polynomial) else Polynomial.constant(other)
        size = max(len(self.coefficients), len(other_poly.coefficients))
        return Polynomial(
            [self[i] + other_poly[i] for i in range(size)]
        )

    def __radd__(self, other: float) -> "Polynomial":
        return self + other

    def __neg__(self) -> "Polynomial":
        return Polynomial([-c for c in self.coefficients])

    def __sub__(self, other: "Polynomial | float") -> "Polynomial":
        other_poly = other if isinstance(other, Polynomial) else Polynomial.constant(other)
        return self + (-other_poly)

    def __rsub__(self, other: float) -> "Polynomial":
        return Polynomial.constant(other) - self

    def __mul__(self, other: "Polynomial | float") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return Polynomial([c * other for c in self.coefficients])
        result = [0.0] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            if a == 0.0:
                continue
            for j, b in enumerate(other.coefficients):
                result[i + j] += a * b
        return Polynomial(result)

    def __rmul__(self, other: float) -> "Polynomial":
        return self * other

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise AlgebraError("polynomial exponent must be non-negative")
        result = Polynomial.constant(1.0)
        base = self
        power = exponent
        while power:
            if power & 1:
                result = result * base
            base = base * base
            power >>= 1
        return result

    def scaled(self, factor: float) -> "Polynomial":
        """The polynomial multiplied by a scalar."""
        return self * factor

    def normalized(self) -> "Polynomial":
        """The polynomial divided by the magnitude of its largest coefficient.

        Normalisation keeps Sturm-sequence remainders well scaled; it does not
        change the roots or the signs used in sign-change counts... except the
        overall sign, which is preserved because we divide by a positive value.
        """
        scale = max(abs(c) for c in self.coefficients)
        if scale == 0.0:
            return Polynomial.zero()
        return Polynomial([c / scale for c in self.coefficients])

    def derivative(self) -> "Polynomial":
        """The first derivative."""
        if self.degree() == 0:
            return Polynomial.zero()
        return Polynomial(
            [i * c for i, c in enumerate(self.coefficients)][1:]
        )

    def divmod(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Polynomial division: returns ``(quotient, remainder)``.

        Raises:
            AlgebraError: when dividing by the zero polynomial.
        """
        if divisor.is_zero():
            raise AlgebraError("polynomial division by zero")
        remainder = list(self.coefficients)
        divisor_coefficients = divisor.coefficients
        divisor_degree = divisor.degree()
        divisor_lead = divisor_coefficients[-1]
        quotient = [0.0] * max(len(remainder) - divisor_degree, 1)

        for position in range(len(remainder) - 1, divisor_degree - 1, -1):
            factor = remainder[position] / divisor_lead
            quotient[position - divisor_degree] = factor
            if factor == 0.0:
                continue
            for offset, coefficient in enumerate(divisor_coefficients):
                remainder[position - divisor_degree + offset] -= factor * coefficient
        return Polynomial(quotient), Polynomial(remainder[:divisor_degree] or [0.0])

    def __divmod__(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        return self.divmod(divisor)

    def __mod__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[0]

    # ------------------------------------------------------------------
    # Composition and shifting
    # ------------------------------------------------------------------
    def compose(self, inner: "Polynomial") -> "Polynomial":
        """The composition ``self(inner(x))`` (Horner in the polynomial ring)."""
        result = Polynomial.zero()
        for coefficient in reversed(self.coefficients):
            result = result * inner + Polynomial.constant(coefficient)
        return result

    def shifted(self, offset: float) -> "Polynomial":
        """The polynomial ``P(x + offset)``.

        The convexity proof introduces the shifted variable ``z = x - r_bar``
        (Section 3.2); ``shifted(r_bar)`` performs exactly that substitution.
        """
        return self.compose(Polynomial.linear(offset, 1.0))

    # ------------------------------------------------------------------
    # Miscellanea
    # ------------------------------------------------------------------
    def l2_norm(self) -> float:
        """Euclidean norm of the coefficient vector."""
        return math.sqrt(sum(c * c for c in self.coefficients))

    def cauchy_root_bound(self) -> float:
        """An upper bound on the magnitude of every (real or complex) root."""
        lead = abs(self.leading_coefficient())
        if lead == 0.0:
            return 0.0
        return 1.0 + max(abs(c) for c in self.coefficients[:-1]) / lead if self.degree() > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = [
            f"{c:+g}*x^{i}" for i, c in enumerate(self.coefficients) if c != 0.0
        ]
        return "Polynomial(" + (" ".join(terms) if terms else "0") + ")"
