"""Bivariate polynomials ``Q(x, y)`` and their restriction to lines.

The boundary of a reception zone is the zero set of a 2-variate polynomial
(Section 2.2).  The convexity proof restricts that polynomial to a line and
studies the resulting univariate polynomial; the segment test of Section 5.1
does the same for grid edges.  This module provides a sparse bivariate
polynomial type supporting exactly those operations:

* evaluation,
* arithmetic (sum, difference, product, scalar multiples, powers),
* restriction to a parametric line ``(x, y) = p + t * d`` producing a
  :class:`~repro.algebra.polynomial.Polynomial` in ``t``,
* partial derivatives (useful for gradient-based boundary refinement).

For the reception polynomial itself the library uses the dedicated factored
representation in :mod:`repro.algebra.reception`, which avoids expanding a
degree-``2n`` bivariate polynomial; the generic type here is used for small
instances, for cross-checks and for the quadratic building blocks
``(a - x)^2 + (b - y)^2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from ..exceptions import AlgebraError
from ..geometry.point import Point
from .polynomial import Polynomial

__all__ = ["BivariatePolynomial", "squared_distance_polynomial"]

Monomial = Tuple[int, int]


def _cleaned(terms: Mapping[Monomial, float]) -> Dict[Monomial, float]:
    """Drop zero coefficients; always keep at least the constant term."""
    cleaned = {key: float(value) for key, value in terms.items() if value != 0.0}
    if not cleaned:
        cleaned[(0, 0)] = 0.0
    return cleaned


@dataclass(frozen=True)
class BivariatePolynomial:
    """A sparse polynomial in two variables ``x`` and ``y``.

    ``terms`` maps exponent pairs ``(i, j)`` to the coefficient of
    ``x^i * y^j``.
    """

    terms: Tuple[Tuple[Monomial, float], ...]

    def __init__(self, terms: Mapping[Monomial, float]):
        cleaned = _cleaned(terms)
        object.__setattr__(
            self, "terms", tuple(sorted(cleaned.items()))
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "BivariatePolynomial":
        return BivariatePolynomial({(0, 0): 0.0})

    @staticmethod
    def constant(value: float) -> "BivariatePolynomial":
        return BivariatePolynomial({(0, 0): value})

    @staticmethod
    def x() -> "BivariatePolynomial":
        """The coordinate polynomial ``x``."""
        return BivariatePolynomial({(1, 0): 1.0})

    @staticmethod
    def y() -> "BivariatePolynomial":
        """The coordinate polynomial ``y``."""
        return BivariatePolynomial({(0, 1): 1.0})

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[Monomial, float]:
        return dict(self.terms)

    def coefficient(self, i: int, j: int) -> float:
        """Coefficient of ``x^i * y^j``."""
        return dict(self.terms).get((i, j), 0.0)

    def total_degree(self) -> int:
        """Largest ``i + j`` with a non-zero coefficient."""
        return max(i + j for (i, j), _ in self.terms)

    def is_zero(self) -> bool:
        return all(value == 0.0 for _, value in self.terms)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, x: float, y: float) -> float:
        total = 0.0
        for (i, j), coefficient in self.terms:
            total += coefficient * (x ** i) * (y ** j)
        return total

    def evaluate_at_point(self, point: Point) -> float:
        """Evaluate at a geometric point."""
        return self(point.x, point.y)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "BivariatePolynomial | float") -> "BivariatePolynomial":
        other_poly = (
            other
            if isinstance(other, BivariatePolynomial)
            else BivariatePolynomial.constant(other)
        )
        result = dict(self.terms)
        for monomial, coefficient in other_poly.terms:
            result[monomial] = result.get(monomial, 0.0) + coefficient
        return BivariatePolynomial(result)

    __radd__ = __add__

    def __neg__(self) -> "BivariatePolynomial":
        return BivariatePolynomial({m: -c for m, c in self.terms})

    def __sub__(self, other: "BivariatePolynomial | float") -> "BivariatePolynomial":
        other_poly = (
            other
            if isinstance(other, BivariatePolynomial)
            else BivariatePolynomial.constant(other)
        )
        return self + (-other_poly)

    def __rsub__(self, other: float) -> "BivariatePolynomial":
        return BivariatePolynomial.constant(other) - self

    def __mul__(self, other: "BivariatePolynomial | float") -> "BivariatePolynomial":
        if not isinstance(other, BivariatePolynomial):
            return BivariatePolynomial({m: c * other for m, c in self.terms})
        result: Dict[Monomial, float] = {}
        for (i1, j1), c1 in self.terms:
            if c1 == 0.0:
                continue
            for (i2, j2), c2 in other.terms:
                key = (i1 + i2, j1 + j2)
                result[key] = result.get(key, 0.0) + c1 * c2
        return BivariatePolynomial(result)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "BivariatePolynomial":
        if exponent < 0:
            raise AlgebraError("bivariate polynomial exponent must be non-negative")
        result = BivariatePolynomial.constant(1.0)
        base = self
        power = exponent
        while power:
            if power & 1:
                result = result * base
            base = base * base
            power >>= 1
        return result

    # ------------------------------------------------------------------
    # Calculus
    # ------------------------------------------------------------------
    def partial_x(self) -> "BivariatePolynomial":
        """Partial derivative with respect to ``x``."""
        return BivariatePolynomial(
            {(i - 1, j): i * c for (i, j), c in self.terms if i > 0}
        )

    def partial_y(self) -> "BivariatePolynomial":
        """Partial derivative with respect to ``y``."""
        return BivariatePolynomial(
            {(i, j - 1): j * c for (i, j), c in self.terms if j > 0}
        )

    def gradient(self, x: float, y: float) -> Point:
        """Gradient vector at ``(x, y)``."""
        return Point(self.partial_x()(x, y), self.partial_y()(x, y))

    # ------------------------------------------------------------------
    # Restrictions
    # ------------------------------------------------------------------
    def restrict_to_parametric_line(
        self, anchor: Point, direction: Point
    ) -> Polynomial:
        """The univariate polynomial ``t -> Q(anchor + t * direction)``."""
        x_poly = Polynomial.linear(anchor.x, direction.x)
        y_poly = Polynomial.linear(anchor.y, direction.y)
        result = Polynomial.zero()
        for (i, j), coefficient in self.terms:
            if coefficient == 0.0:
                continue
            result = result + (x_poly ** i) * (y_poly ** j) * coefficient
        return result

    def restrict_to_segment(self, start: Point, end: Point) -> Polynomial:
        """Restriction to the segment parametrised by ``t in [0, 1]``."""
        return self.restrict_to_parametric_line(start, end - start)


def squared_distance_polynomial(station: Point) -> BivariatePolynomial:
    """The bivariate polynomial ``(a - x)^2 + (b - y)^2`` for a station at ``(a, b)``.

    These quadratics are the building blocks of the reception polynomial of
    eq. (2) in the paper.
    """
    a, b = station.x, station.y
    return BivariatePolynomial(
        {
            (0, 0): a * a + b * b,
            (1, 0): -2.0 * a,
            (0, 1): -2.0 * b,
            (2, 0): 1.0,
            (0, 2): 1.0,
        }
    )
