"""UDG-versus-SINR comparison: false positives and false negatives.

The paper's Figures 2–4 illustrate the two ways the UDG (protocol) model
misjudges reception relative to the SINR model:

* **false positive** — the UDG predicts reception, but cumulative interference
  of several stations slightly outside the receiver's range prevents it in the
  SINR model (Figure 2);
* **false negative** — the UDG predicts a collision (two adjacent transmitters),
  but in the SINR model the nearer/stronger transmission is still received
  (Figure 4, cases (A)-(B) and (C)-(D)).

This module classifies reception at arbitrary points under both models and
aggregates disagreement statistics over rasters and point sets, which is what
the Figure 2–4 benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.point import Point
from ..model.diagram import SINRDiagram
from ..model.network import WirelessNetwork
from .udg import UnitDiskGraph

__all__ = [
    "ReceptionOutcome",
    "PointComparison",
    "ModelComparator",
    "ComparisonSummary",
]


class ReceptionOutcome(str, Enum):
    """Agreement classification of one (point, sender) reception decision."""

    AGREE_RECEIVED = "agree_received"
    AGREE_NOT_RECEIVED = "agree_not_received"
    FALSE_POSITIVE = "udg_false_positive"  # UDG says received, SINR says no.
    FALSE_NEGATIVE = "udg_false_negative"  # UDG says no, SINR says received.


@dataclass(frozen=True, slots=True)
class PointComparison:
    """Reception decision of both models for one sender at one point."""

    point: Point
    sender: int
    udg_received: bool
    sinr_received: bool

    @property
    def outcome(self) -> ReceptionOutcome:
        if self.udg_received and self.sinr_received:
            return ReceptionOutcome.AGREE_RECEIVED
        if not self.udg_received and not self.sinr_received:
            return ReceptionOutcome.AGREE_NOT_RECEIVED
        if self.udg_received:
            return ReceptionOutcome.FALSE_POSITIVE
        return ReceptionOutcome.FALSE_NEGATIVE


@dataclass(frozen=True)
class ComparisonSummary:
    """Aggregate disagreement statistics over a collection of comparisons."""

    counts: Dict[ReceptionOutcome, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, outcome: ReceptionOutcome) -> float:
        if self.total == 0:
            return 0.0
        return self.counts.get(outcome, 0) / self.total

    @property
    def disagreement_fraction(self) -> float:
        """Fraction of decisions where the two models disagree."""
        return self.fraction(ReceptionOutcome.FALSE_POSITIVE) + self.fraction(
            ReceptionOutcome.FALSE_NEGATIVE
        )

    def as_dict(self) -> Dict[str, float]:
        """A plain-dict view convenient for benchmark reporting."""
        return {
            "total": float(self.total),
            **{outcome.value: float(self.counts.get(outcome, 0)) for outcome in ReceptionOutcome},
            "disagreement_fraction": self.disagreement_fraction,
        }


class ModelComparator:
    """Compares SINR reception with UDG (protocol-model) reception.

    Args:
        network: the SINR network (its stations define both models).
        udg_radius: transmission radius used by the UDG baseline.
        transmitters: indices of the concurrently transmitting stations
            (default: all stations transmit).
    """

    def __init__(
        self,
        network: WirelessNetwork,
        udg_radius: float,
        transmitters: Optional[Iterable[int]] = None,
    ):
        self.network = network
        self.udg = UnitDiskGraph.from_network(network, radius=udg_radius)
        self.transmitters: Tuple[int, ...] = tuple(
            range(len(network)) if transmitters is None else sorted(set(transmitters))
        )
        self._active_network = self._restrict_network_to_transmitters()
        self._diagram = SINRDiagram(self._active_network) if self._active_network else None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _restrict_network_to_transmitters(self) -> Optional[WirelessNetwork]:
        """The SINR network containing only the transmitting stations.

        Silent stations neither provide signal nor interference (Figure 1(C)),
        so the SINR side of the comparison uses the restricted network.
        Returns None when fewer than two stations transmit (the SINR model
        needs at least two stations; a single transmitter is handled as a
        special case in :meth:`sinr_receives`).
        """
        if len(self.transmitters) >= 2:
            stations = tuple(self.network.stations[i] for i in self.transmitters)
            return WirelessNetwork(
                stations=stations,
                noise=self.network.noise,
                beta=self.network.beta,
                alpha=self.network.alpha,
            )
        return None

    def _active_index(self, sender: int) -> int:
        """Index of ``sender`` within the restricted (transmitters-only) network."""
        return self.transmitters.index(sender)

    # ------------------------------------------------------------------
    # Per-point decisions
    # ------------------------------------------------------------------
    def udg_receives(self, point: Point, sender: int) -> bool:
        """UDG (protocol model) reception of ``sender`` at ``point``."""
        return self.udg.point_receives(point, sender, self.transmitters)

    def sinr_receives(self, point: Point, sender: int) -> bool:
        """SINR reception of ``sender`` at ``point`` (silent stations removed)."""
        if sender not in self.transmitters:
            return False
        if self._active_network is None:
            # Single transmitter: reception iff SNR = psi d^-alpha / N >= beta.
            station = self.network.stations[sender]
            if point == station.location:
                return True
            energy = station.power * station.location.distance_to(point) ** (
                -self.network.alpha
            )
            if self.network.noise == 0.0:
                return True
            return energy / self.network.noise >= self.network.beta
        return self._active_network.is_received(self._active_index(sender), point)

    def compare_at(self, point: Point, sender: int) -> PointComparison:
        """Both models' decisions for ``sender`` at ``point``."""
        return PointComparison(
            point=point,
            sender=sender,
            udg_received=self.udg_receives(point, sender),
            sinr_received=self.sinr_receives(point, sender),
        )

    def heard_station_udg(self, point: Point) -> Optional[int]:
        """Station heard at ``point`` under the UDG rule (or None)."""
        return self.udg.station_heard_at(point, self.transmitters)

    def heard_station_sinr(self, point: Point) -> Optional[int]:
        """Station heard at ``point`` under the SINR rule (or None)."""
        for sender in self.transmitters:
            if self.sinr_receives(point, sender):
                return sender
        return None

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def summarize_points(
        self, points: Sequence[Point], sender: int
    ) -> ComparisonSummary:
        """Aggregate agreement statistics for one sender over many points."""
        counts: Dict[ReceptionOutcome, int] = {outcome: 0 for outcome in ReceptionOutcome}
        for point in points:
            outcome = self.compare_at(point, sender).outcome
            counts[outcome] += 1
        return ComparisonSummary(counts=counts)

    def summarize_grid(
        self,
        lower_left: Point,
        upper_right: Point,
        sender: int,
        resolution: int = 100,
    ) -> ComparisonSummary:
        """Aggregate agreement statistics for one sender over a raster of points."""
        xs = np.linspace(lower_left.x, upper_right.x, resolution)
        ys = np.linspace(lower_left.y, upper_right.y, resolution)
        points = [Point(float(x), float(y)) for y in ys for x in xs]
        return self.summarize_points(points, sender)
