"""Graph-based wireless models: UDG, Quasi-UDG and interference-graph baselines.

These are the simplified models the paper compares against (Sections 1.1–1.2):
the unit disk graph / protocol model, the Quasi-UDG model of Kuhn et al., and
the general connectivity+interference graph family, together with the
comparator that quantifies false positives / false negatives relative to the
SINR model (Figures 2–4).
"""

from .comparison import (
    ComparisonSummary,
    ModelComparator,
    PointComparison,
    ReceptionOutcome,
)
from .interference_graph import InterferenceGraphModel, two_hop_augmentation
from .qudg import QuasiUnitDiskGraph
from .scheduling import (
    Link,
    ScheduleComparison,
    compare_schedules,
    greedy_schedule,
    sinr_link_feasible,
    sinr_links_feasible,
    udg_links_feasible,
)
from .udg import UnitDiskGraph

__all__ = [
    "ComparisonSummary",
    "InterferenceGraphModel",
    "Link",
    "ModelComparator",
    "PointComparison",
    "QuasiUnitDiskGraph",
    "ReceptionOutcome",
    "ScheduleComparison",
    "UnitDiskGraph",
    "compare_schedules",
    "greedy_schedule",
    "sinr_link_feasible",
    "sinr_links_feasible",
    "two_hop_augmentation",
    "udg_links_feasible",
]
