"""General graph-based models with separate connectivity and interference graphs.

Section 1.2 of the paper describes the more elaborate graph-based models used
by protocol designers: a connectivity graph ``G_c = (S, E_c)`` and an
interference graph ``G_i = (S, E_i)``; a station ``s`` receives from ``s'``
iff they are neighbours in ``G_c`` and ``s`` has no concurrently transmitting
neighbour in ``G_i``.  A commonly used special case sets ``G_i`` to ``G_c``
augmented with all 2-hop neighbours.

This module implements that general model, the 2-hop augmentation, and
constructors from UDG / Q-UDG instances so the comparison experiments can
sweep across the whole family of graph-based baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..exceptions import NetworkConfigurationError
from ..geometry.point import Point
from .qudg import QuasiUnitDiskGraph
from .udg import UnitDiskGraph

__all__ = ["InterferenceGraphModel", "two_hop_augmentation"]


def two_hop_augmentation(graph: nx.Graph) -> nx.Graph:
    """Return ``graph`` augmented with an edge between every pair of 2-hop neighbours."""
    augmented = graph.copy()
    for node in graph.nodes:
        neighbours = list(graph.neighbors(node))
        for i, first in enumerate(neighbours):
            for second in neighbours[i + 1 :]:
                augmented.add_edge(first, second)
    return augmented


@dataclass(frozen=True)
class InterferenceGraphModel:
    """A graph-based reception model ``(G_c, G_i)`` over indexed stations."""

    locations: Tuple[Point, ...]
    connectivity: nx.Graph
    interference: nx.Graph

    def __init__(
        self,
        locations: Sequence[Point],
        connectivity: nx.Graph,
        interference: nx.Graph,
    ):
        n = len(locations)
        if n < 1:
            raise NetworkConfigurationError("the model needs at least one station")
        for graph, name in ((connectivity, "connectivity"), (interference, "interference")):
            if set(graph.nodes) != set(range(n)):
                raise NetworkConfigurationError(
                    f"the {name} graph must have exactly the nodes 0..{n - 1}"
                )
        object.__setattr__(self, "locations", tuple(locations))
        object.__setattr__(self, "connectivity", connectivity.copy())
        object.__setattr__(self, "interference", interference.copy())

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_udg(udg: UnitDiskGraph) -> "InterferenceGraphModel":
        """The classic UDG model: interference graph equals connectivity graph."""
        graph = udg.graph
        return InterferenceGraphModel(
            locations=udg.locations, connectivity=graph, interference=graph
        )

    @staticmethod
    def from_udg_with_two_hop_interference(udg: UnitDiskGraph) -> "InterferenceGraphModel":
        """UDG connectivity with interference from all 2-hop neighbours."""
        graph = udg.graph
        return InterferenceGraphModel(
            locations=udg.locations,
            connectivity=graph,
            interference=two_hop_augmentation(graph),
        )

    @staticmethod
    def from_qudg(qudg: QuasiUnitDiskGraph) -> "InterferenceGraphModel":
        """Q-UDG connectivity (inner radius) with interference from the outer radius."""
        return InterferenceGraphModel(
            locations=qudg.locations,
            connectivity=qudg.connectivity_graph,
            interference=qudg.interference_graph,
        )

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.locations)

    def station_receives(
        self, receiver: int, sender: int, transmitters: Iterable[int]
    ) -> bool:
        """Graph-rule reception: connected to the sender, no interfering neighbour."""
        transmitting: Set[int] = set(transmitters)
        if sender not in transmitting:
            return False
        if not self.connectivity.has_edge(receiver, sender):
            return False
        for other in transmitting:
            if other in (sender, receiver):
                continue
            if self.interference.has_edge(receiver, other):
                return False
        return True

    def feasible_links(
        self, transmitters: Iterable[int]
    ) -> List[Tuple[int, int]]:
        """All ``(sender, receiver)`` pairs that succeed under the given transmitter set."""
        transmitting = set(transmitters)
        links: List[Tuple[int, int]] = []
        for sender in sorted(transmitting):
            for receiver in range(len(self.locations)):
                if receiver == sender:
                    continue
                if self.station_receives(receiver, sender, transmitting):
                    links.append((sender, receiver))
        return links

    def maximum_independent_transmission_round(self) -> List[int]:
        """A greedy maximal set of transmitters that do not interfere at each other.

        A simple scheduling primitive used by the workload generators to build
        "plausible" concurrent transmitter sets for comparison experiments.
        """
        chosen: List[int] = []
        blocked: Set[int] = set()
        for node in sorted(
            self.interference.nodes, key=lambda v: self.interference.degree[v]
        ):
            if node in blocked:
                continue
            chosen.append(node)
            blocked.add(node)
            blocked.update(self.interference.neighbors(node))
        return chosen
