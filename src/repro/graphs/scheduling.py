"""Link-scheduling primitives under the SINR and graph-based models.

The paper's motivation (Section 1.1, and the related work on scheduling
complexity [8, 13]) is that higher-layer tasks — scheduling above all — are
designed against graph-based models even though feasibility is really decided
by the SINR rule.  This module provides the minimal machinery needed to make
that comparison concrete:

* feasibility of a set of simultaneously scheduled links under the SINR model
  (every receiver must clear the threshold given all scheduled senders as
  interferers) and under a graph-based model (the protocol rule);
* a greedy first-fit scheduler that packs links into rounds under either
  feasibility oracle;
* a comparison helper reporting the schedule lengths side by side, which is
  the shape of the capacity/scheduling gaps the cited works study.

A *link* is a pair ``(sender_index, receiver_index)`` of station indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Set, Tuple

from ..exceptions import NetworkConfigurationError
from ..model.network import WirelessNetwork
from .udg import UnitDiskGraph

__all__ = [
    "Link",
    "sinr_link_feasible",
    "sinr_links_feasible",
    "udg_links_feasible",
    "greedy_schedule",
    "ScheduleComparison",
    "compare_schedules",
]

Link = Tuple[int, int]


def _validate_links(network: WirelessNetwork, links: Sequence[Link]) -> None:
    n = len(network)
    seen_receivers: Set[int] = set()
    for sender, receiver in links:
        if not (0 <= sender < n and 0 <= receiver < n):
            raise NetworkConfigurationError(f"link ({sender}, {receiver}) out of range")
        if sender == receiver:
            raise NetworkConfigurationError("a station cannot transmit to itself")


def sinr_link_feasible(
    network: WirelessNetwork, link: Link, senders: Iterable[int]
) -> bool:
    """Is ``link`` successful when exactly ``senders`` transmit simultaneously?

    The receiver hears its sender iff the sender's signal divided by the sum
    of the other senders' energies plus noise reaches ``beta``.  Receivers are
    stations, so the energies are evaluated at station locations.
    """
    sender, receiver = link
    transmitting = set(senders)
    if sender not in transmitting:
        return False
    receiver_location = network.station(receiver).location
    signal = network.energy(sender, receiver_location)
    interference = sum(
        network.energy(other, receiver_location)
        for other in transmitting
        if other not in (sender, receiver)
    )
    denominator = interference + network.noise
    if denominator == 0.0:
        return True
    return signal / denominator >= network.beta


def sinr_links_feasible(network: WirelessNetwork, links: Sequence[Link]) -> bool:
    """Can all ``links`` be scheduled in the same round under the SINR rule?"""
    _validate_links(network, links)
    senders = {sender for sender, _ in links}
    receivers = {receiver for _, receiver in links}
    # A station cannot transmit and receive in the same round, and a receiver
    # cannot decode two senders at once.
    if senders & receivers:
        return False
    if len(receivers) != len(links):
        return False
    return all(sinr_link_feasible(network, link, senders) for link in links)


def udg_links_feasible(
    network: WirelessNetwork, links: Sequence[Link], radius: float
) -> bool:
    """Can all ``links`` be scheduled in the same round under the UDG rule?"""
    _validate_links(network, links)
    senders = {sender for sender, _ in links}
    receivers = {receiver for _, receiver in links}
    if senders & receivers or len(receivers) != len(links):
        return False
    udg = UnitDiskGraph.from_network(network, radius=radius)
    return all(
        udg.station_receives(receiver, sender, senders) for sender, receiver in links
    )


def greedy_schedule(
    links: Sequence[Link],
    round_feasible: Callable[[Sequence[Link]], bool],
) -> List[List[Link]]:
    """First-fit greedy scheduling of ``links`` into feasible rounds.

    Links are processed in the given order; each link is appended to the first
    round that stays feasible with it, or opens a new round.  Every single
    link must be feasible on its own, otherwise scheduling is impossible and a
    :class:`NetworkConfigurationError` is raised.
    """
    rounds: List[List[Link]] = []
    for link in links:
        if not round_feasible([link]):
            raise NetworkConfigurationError(
                f"link {link} is infeasible even in isolation; it cannot be scheduled"
            )
        placed = False
        for round_links in rounds:
            if round_feasible([*round_links, link]):
                round_links.append(link)
                placed = True
                break
        if not placed:
            rounds.append([link])
    return rounds


@dataclass(frozen=True)
class ScheduleComparison:
    """Schedule lengths of the same link set under the two feasibility oracles."""

    links: Tuple[Link, ...]
    sinr_rounds: Tuple[Tuple[Link, ...], ...]
    udg_rounds: Tuple[Tuple[Link, ...], ...]

    @property
    def sinr_length(self) -> int:
        return len(self.sinr_rounds)

    @property
    def udg_length(self) -> int:
        return len(self.udg_rounds)

    @property
    def udg_overhead(self) -> float:
        """How many times longer the UDG-driven schedule is (>= or < 1)."""
        if self.sinr_length == 0:
            return 1.0
        return self.udg_length / self.sinr_length


def compare_schedules(
    network: WirelessNetwork, links: Sequence[Link], udg_radius: float
) -> ScheduleComparison:
    """Greedy schedules of the same links under SINR vs. UDG feasibility."""
    sinr_rounds = greedy_schedule(
        links, lambda batch: sinr_links_feasible(network, batch)
    )
    udg_rounds = greedy_schedule(
        links, lambda batch: udg_links_feasible(network, batch, udg_radius)
    )
    return ScheduleComparison(
        links=tuple(links),
        sinr_rounds=tuple(tuple(r) for r in sinr_rounds),
        udg_rounds=tuple(tuple(r) for r in udg_rounds),
    )
