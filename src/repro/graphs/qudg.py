"""The Quasi Unit Disk Graph (Q-UDG) model of Kuhn, Wattenhofer, Zollinger [10].

The Q-UDG model associates two concentric circles with every station: an
inner radius within which transmissions are always received, and an outer
radius beyond which they never are; between the two radii reception is
uncertain.  The paper cites this model because Theorem 2 (fatness of SINR
reception zones) "lends support" to it: a fat convex zone is sandwiched
between two concentric disks whose radius ratio is bounded by the fatness
constant ``(sqrt(beta)+1)/(sqrt(beta)-1)``.

This module implements the Q-UDG reception rule and a helper that derives a
Q-UDG from an SINR network by measuring each zone's inscribed and enclosing
radii (i.e. realising the paper's observation quantitatively).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..exceptions import NetworkConfigurationError
from ..geometry.point import Point
from ..model.diagram import SINRDiagram
from ..model.network import WirelessNetwork

__all__ = ["QuasiUnitDiskGraph"]


@dataclass(frozen=True)
class QuasiUnitDiskGraph:
    """A Quasi-UDG: guaranteed reception within ``inner_radius``, none beyond ``outer_radius``.

    Attributes:
        locations: station positions.
        inner_radius: radius of certain reception.
        outer_radius: radius of possible interference / uncertain reception.
    """

    locations: Tuple[Point, ...]
    inner_radius: float
    outer_radius: float

    def __init__(
        self,
        locations: Sequence[Point],
        inner_radius: float,
        outer_radius: float,
    ):
        if len(locations) < 1:
            raise NetworkConfigurationError("a Q-UDG needs at least one station")
        if inner_radius <= 0.0 or outer_radius <= 0.0:
            raise NetworkConfigurationError("Q-UDG radii must be positive")
        if inner_radius > outer_radius:
            raise NetworkConfigurationError(
                "the inner radius cannot exceed the outer radius"
            )
        object.__setattr__(self, "locations", tuple(locations))
        object.__setattr__(self, "inner_radius", float(inner_radius))
        object.__setattr__(self, "outer_radius", float(outer_radius))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_sinr_network(
        network: WirelessNetwork, angles: int = 180
    ) -> "QuasiUnitDiskGraph":
        """Derive a Q-UDG from an SINR network's measured zone radii.

        The inner radius is the smallest inscribed-zone radius over all
        stations, the outer radius the largest enclosing-zone radius; by
        Theorem 2 the two differ by at most the constant fatness factor for
        uniform power networks with ``beta > 1`` and identical station
        spacing; for heterogeneous spacings the ratio reflects the geometry.
        """
        diagram = SINRDiagram(network)
        inscribed: List[float] = []
        enclosing: List[float] = []
        for index in range(len(network)):
            zone = diagram.zone(index)
            if zone.is_degenerate:
                continue
            measurement = zone.fatness(angles=angles)
            inscribed.append(measurement.delta)
            enclosing.append(measurement.Delta)
        if not inscribed:
            raise NetworkConfigurationError(
                "cannot derive a Q-UDG: every reception zone is degenerate"
            )
        return QuasiUnitDiskGraph(
            locations=network.locations(),
            inner_radius=min(inscribed),
            outer_radius=max(enclosing),
        )

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.locations)

    @cached_property
    def connectivity_graph(self) -> nx.Graph:
        """Edges between stations within the inner (certain reception) radius."""
        graph = nx.Graph()
        graph.add_nodes_from(range(len(self.locations)))
        for i in range(len(self.locations)):
            for j in range(i + 1, len(self.locations)):
                if self.locations[i].distance_to(self.locations[j]) <= self.inner_radius:
                    graph.add_edge(i, j)
        return graph

    @cached_property
    def interference_graph(self) -> nx.Graph:
        """Edges between stations within the outer (interference) radius."""
        graph = nx.Graph()
        graph.add_nodes_from(range(len(self.locations)))
        for i in range(len(self.locations)):
            for j in range(i + 1, len(self.locations)):
                if self.locations[i].distance_to(self.locations[j]) <= self.outer_radius:
                    graph.add_edge(i, j)
        return graph

    @property
    def radius_ratio(self) -> float:
        """The Q-UDG quality parameter ``outer_radius / inner_radius``."""
        return self.outer_radius / self.inner_radius

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def point_reception(
        self, point: Point, sender: int, transmitters: Iterable[int]
    ) -> str:
        """Tri-valued reception at an arbitrary point.

        Returns ``"received"`` when the point is within the sender's inner
        disk and outside every other transmitter's outer disk;
        ``"not_received"`` when the point is outside the sender's outer disk
        or inside some other transmitter's inner disk; and ``"uncertain"``
        otherwise (the grey ring of the model).
        """
        transmitting: Set[int] = set(transmitters)
        if sender not in transmitting:
            return "not_received"
        sender_distance = self.locations[sender].distance_to(point)
        if sender_distance > self.outer_radius:
            return "not_received"

        interferer_distances = [
            self.locations[other].distance_to(point)
            for other in transmitting
            if other != sender
        ]
        certain_interference = any(
            distance <= self.inner_radius for distance in interferer_distances
        )
        possible_interference = any(
            distance <= self.outer_radius for distance in interferer_distances
        )

        if sender_distance <= self.inner_radius and not possible_interference:
            return "received"
        if certain_interference:
            return "not_received"
        return "uncertain"

    def station_receives(
        self, receiver: int, sender: int, transmitters: Iterable[int]
    ) -> str:
        """Tri-valued reception at a station, using the two graphs."""
        transmitting = set(transmitters)
        if sender not in transmitting:
            return "not_received"
        connected = self.connectivity_graph.has_edge(receiver, sender)
        possibly_connected = self.interference_graph.has_edge(receiver, sender)
        interferers = [
            other
            for other in transmitting
            if other not in (sender, receiver)
            and self.interference_graph.has_edge(receiver, other)
        ]
        certain_interferers = [
            other
            for other in interferers
            if self.connectivity_graph.has_edge(receiver, other)
        ]
        if connected and not interferers:
            return "received"
        if not possibly_connected or certain_interferers:
            return "not_received"
        return "uncertain"
