"""The unit disk graph (UDG) / protocol model.

The UDG model (Clark, Colbourn, Johnson [6]; "protocol model" in Gupta–Kumar
[9]) represents stations as points in the plane with an edge between any two
stations at distance at most one unit (more generally, at most the
transmission radius).  Reception follows the *graph rule* used throughout the
paper's introduction: a station ``s`` successfully receives a message from a
transmitting neighbour ``s'`` if and only if no other neighbour of ``s`` is
transmitting concurrently.

For comparing against SINR diagrams we also need reception at arbitrary
*points* of the plane (the receiver ``p`` of Figures 1–4 is not itself a
station): a point hears a transmitter if it lies within the transmitter's
disk and within no other concurrently transmitting station's disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..exceptions import NetworkConfigurationError
from ..geometry.point import Point
from ..model.network import WirelessNetwork

__all__ = ["UnitDiskGraph"]


@dataclass(frozen=True)
class UnitDiskGraph:
    """The unit disk graph of a set of station locations.

    Attributes:
        locations: station positions.
        radius: transmission/reception radius (1.0 for the classic UDG).
    """

    locations: Tuple[Point, ...]
    radius: float = 1.0

    def __init__(self, locations: Sequence[Point], radius: float = 1.0):
        if len(locations) < 1:
            raise NetworkConfigurationError("a UDG needs at least one station")
        if radius <= 0.0:
            raise NetworkConfigurationError(f"UDG radius must be positive, got {radius}")
        object.__setattr__(self, "locations", tuple(locations))
        object.__setattr__(self, "radius", float(radius))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_network(network: WirelessNetwork, radius: float = 1.0) -> "UnitDiskGraph":
        """Build the UDG over the stations of a wireless network."""
        return UnitDiskGraph(locations=network.locations(), radius=radius)

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.locations)

    @cached_property
    def graph(self) -> nx.Graph:
        """The UDG as a :class:`networkx.Graph` (nodes are station indices)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(len(self.locations)))
        for i in range(len(self.locations)):
            for j in range(i + 1, len(self.locations)):
                if self.locations[i].distance_to(self.locations[j]) <= self.radius:
                    graph.add_edge(i, j)
        return graph

    def are_adjacent(self, i: int, j: int) -> bool:
        """True if stations ``i`` and ``j`` are within the transmission radius."""
        if i == j:
            return False
        return self.locations[i].distance_to(self.locations[j]) <= self.radius

    def neighbours(self, index: int) -> List[int]:
        """Indices of all stations adjacent to station ``index``."""
        return sorted(self.graph.neighbors(index))

    def degree(self, index: int) -> int:
        """Number of neighbours of station ``index``."""
        return self.graph.degree[index]

    def is_connected(self) -> bool:
        """True if the UDG is connected."""
        return nx.is_connected(self.graph)

    def independent_transmitters(self, transmitters: Iterable[int]) -> bool:
        """True if no two of the given transmitters are adjacent.

        Under the graph rule a set of mutually non-adjacent transmitters can
        transmit without colliding at any common neighbour, which is the
        premise of UDG-based scheduling.
        """
        active = list(transmitters)
        for position, first in enumerate(active):
            for second in active[position + 1 :]:
                if self.are_adjacent(first, second):
                    return False
        return True

    # ------------------------------------------------------------------
    # Reception (the graph rule of the paper's introduction)
    # ------------------------------------------------------------------
    def station_receives(
        self, receiver: int, sender: int, transmitters: Iterable[int]
    ) -> bool:
        """Graph-rule reception at a *station*.

        Station ``receiver`` receives from ``sender`` iff they are adjacent,
        ``sender`` is transmitting, and no other transmitting station is
        adjacent to ``receiver``.
        """
        transmitting = set(transmitters)
        if sender not in transmitting or not self.are_adjacent(receiver, sender):
            return False
        for other in transmitting:
            if other == sender or other == receiver:
                continue
            if self.are_adjacent(receiver, other):
                return False
        return True

    def point_receives(
        self, point: Point, sender: int, transmitters: Iterable[int]
    ) -> bool:
        """Graph-rule reception at an arbitrary point of the plane.

        The point hears ``sender`` iff it lies within the sender's disk and
        within no other concurrently transmitting station's disk.  This is the
        per-point rule used for the UDG halves of Figures 2–4.
        """
        transmitting = set(transmitters)
        if sender not in transmitting:
            return False
        if self.locations[sender].distance_to(point) > self.radius:
            return False
        for other in transmitting:
            if other == sender:
                continue
            if self.locations[other].distance_to(point) <= self.radius:
                return False
        return True

    def station_heard_at(
        self, point: Point, transmitters: Optional[Iterable[int]] = None
    ) -> Optional[int]:
        """The unique transmitter heard at ``point`` under the graph rule, or None."""
        transmitting: Set[int] = (
            set(range(len(self.locations)))
            if transmitters is None
            else set(transmitters)
        )
        covering = [
            index
            for index in transmitting
            if self.locations[index].distance_to(point) <= self.radius
        ]
        if len(covering) == 1:
            return covering[0]
        return None

    def reception_zone_indicator(
        self, index: int, transmitters: Optional[Iterable[int]] = None
    ):
        """The reception zone of station ``index`` as a point predicate."""
        transmitting = (
            set(range(len(self.locations)))
            if transmitters is None
            else set(transmitters)
        )

        def predicate(point: Point) -> bool:
            return self.point_receives(point, index, transmitting)

        return predicate
