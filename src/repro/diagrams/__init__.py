"""Diagram construction: boundary tracing, text exports and the paper's figures."""

from .contour import marching_squares, trace_zone_boundary
from .export import to_ascii, to_csv, to_pgm, write_csv, write_pgm
from .figures import (
    PAPER_FIGURES,
    FigurePanel,
    figure1_panels,
    figure2_scenario,
    figure3_4_steps,
    figure5_network,
    figure6_network,
    figure7_network,
)

__all__ = [
    "FigurePanel",
    "PAPER_FIGURES",
    "figure1_panels",
    "figure2_scenario",
    "figure3_4_steps",
    "figure5_network",
    "figure6_network",
    "figure7_network",
    "marching_squares",
    "to_ascii",
    "to_csv",
    "to_pgm",
    "trace_zone_boundary",
    "write_csv",
    "write_pgm",
]
