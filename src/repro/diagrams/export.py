"""Export of SINR diagrams to plain-text formats.

The paper's figures were produced with a plotting package; in this offline
reproduction the rasterised diagrams are exported as:

* **ASCII art** — a quick human-readable rendering for the terminal (used by
  the examples),
* **PGM images** — portable greymap files viewable with any image tool,
* **CSV** — the raw label / SINR matrices, for external plotting.

All exporters take the :class:`~repro.model.diagram.RasterDiagram` produced by
:meth:`SINRDiagram.rasterize` and are deterministic.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..exceptions import DiagramError
from ..geometry.point import Point
from ..model.diagram import NO_RECEPTION, RasterDiagram

__all__ = ["to_ascii", "to_pgm", "to_csv", "write_pgm", "write_csv"]

#: Characters used for the zones in ASCII renderings (cycled when n > 16).
_ZONE_CHARACTERS = "0123456789ABCDEF"
_EMPTY_CHARACTER = "."
_STATION_CHARACTER = "*"


def to_ascii(
    raster: RasterDiagram,
    station_locations: Optional[Sequence[Point]] = None,
    max_width: int = 100,
) -> str:
    """Render a raster diagram as ASCII art.

    Each pixel becomes one character: the station index (hex digit) of the
    zone covering it, ``.`` for the null zone, and ``*`` for pixels containing
    a station.  Rows are emitted top-to-bottom (the usual text orientation),
    so the y axis is flipped relative to the raster arrays.
    """
    labels = raster.labels
    rows, columns = labels.shape
    step = max(1, int(np.ceil(columns / max_width)))

    station_cells = set()
    if station_locations:
        for location in station_locations:
            column = int(np.argmin(np.abs(raster.xs - location.x)))
            row = int(np.argmin(np.abs(raster.ys - location.y)))
            station_cells.add((row, column))

    lines: List[str] = []
    for r in range(rows - 1, -1, -step):
        characters: List[str] = []
        for c in range(0, columns, step):
            if (r, c) in station_cells:
                characters.append(_STATION_CHARACTER)
                continue
            label = int(labels[r, c])
            if label == NO_RECEPTION:
                characters.append(_EMPTY_CHARACTER)
            else:
                characters.append(_ZONE_CHARACTERS[label % len(_ZONE_CHARACTERS)])
        lines.append("".join(characters))
    return "\n".join(lines)


def to_pgm(raster: RasterDiagram, levels: int = 255) -> str:
    """Render the label map as an ASCII (P2) portable greymap.

    The null zone maps to white (``levels``), zone ``i`` maps to a grey level
    spread evenly across the available range, so adjacent zones are visually
    distinct.
    """
    labels = raster.labels
    rows, columns = labels.shape
    n_zones = int(labels.max()) + 1 if labels.max() >= 0 else 1
    grey = np.full(labels.shape, levels, dtype=int)
    for zone in range(n_zones):
        grey[labels == zone] = int((zone + 1) * levels / (n_zones + 1))

    lines = [f"P2", f"{columns} {rows}", str(levels)]
    for r in range(rows - 1, -1, -1):
        lines.append(" ".join(str(int(v)) for v in grey[r]))
    return "\n".join(lines) + "\n"


def to_csv(raster: RasterDiagram) -> str:
    """Export the label map as CSV with an x/y header row and column.

    The first row holds the x coordinates, the first column the y coordinates,
    and the body holds the integer labels (``-1`` = no reception).
    """
    lines = ["," + ",".join(f"{x:.6g}" for x in raster.xs)]
    for r, y in enumerate(raster.ys):
        row_labels = ",".join(str(int(v)) for v in raster.labels[r])
        lines.append(f"{y:.6g},{row_labels}")
    return "\n".join(lines) + "\n"


def write_pgm(raster: RasterDiagram, path: "Path | str", levels: int = 255) -> Path:
    """Write the PGM rendering to ``path`` and return the path."""
    destination = Path(path)
    destination.write_text(to_pgm(raster, levels=levels))
    return destination


def write_csv(raster: RasterDiagram, path: "Path | str") -> Path:
    """Write the CSV export to ``path`` and return the path."""
    destination = Path(path)
    destination.write_text(to_csv(raster))
    return destination
