"""The paper's figures as reproducible scenarios.

The original figures were generated numerically from unspecified station
layouts; this module fixes concrete layouts that provably reproduce the
qualitative behaviour each figure illustrates (reception decisions are checked
by the test suite and reported by the benchmark harness):

* **Figure 1** — three uniform stations and a receiver ``p``: (A) ``p`` hears
  ``s2``; (B) after ``s1`` moves, ``p`` hears nothing; (C) with ``s3`` silent,
  ``p`` hears ``s1``.
* **Figure 2** — cumulative interference: the UDG model says ``p`` hears
  ``s1`` but the combined interference of ``s2, s3, s4`` (each individually
  out of range) silences it in the SINR model (a UDG *false positive*).
* **Figures 3–4** — stations are added one at a time: with ``s1`` alone both
  models agree; with ``s1, s2`` the UDG predicts a collision while the SINR
  model still delivers ``s1`` (a *false negative*); with ``s3`` added the SINR
  model delivers ``s3``; with ``s4`` added the outcome changes again.
* **Figure 5** — ``beta = 0.3 < 1`` produces visibly non-convex reception
  zones (the counterexample regime for Theorem 1).
* **Figure 6** — the point-location partition into ``H_i^+`` (certified
  reception), ``H_i^?`` (uncertain band) and ``H^-`` (certified silence).
* **Figure 7** — the fatness parameters ``delta`` and ``Delta`` of a zone.

Every ``figureN_*`` function returns plain data (networks, points, expected
outcomes) so that examples, tests and benchmarks can share one source of
truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry.point import Point
from ..model.diagram import SINRDiagram
from ..model.network import WirelessNetwork

__all__ = [
    "FigurePanel",
    "figure1_panels",
    "figure2_scenario",
    "figure3_4_steps",
    "figure5_network",
    "figure6_network",
    "figure7_network",
    "PAPER_FIGURES",
]


@dataclass(frozen=True)
class FigurePanel:
    """One panel of a paper figure: a network, an optional receiver, expectations.

    Attributes:
        name: panel identifier, e.g. ``"1A"``.
        network: the transmitting stations of the panel.
        receiver: the probe point drawn as a solid square in the paper
            (None for panels without a receiver).
        udg_radius: transmission radius used for the UDG half of the panel
            (None when the panel has no UDG counterpart).
        expected_sinr: index of the station the receiver hears in the SINR
            model, or None for "hears nothing".
        expected_udg: index of the station the receiver hears in the UDG
            model, or None for "hears nothing"; only meaningful when
            ``udg_radius`` is set.
        bounding_box: plot range of the original figure, as
            ``(lower_left, upper_right)``.
        description: one-line description of what the panel shows.
    """

    name: str
    network: WirelessNetwork
    receiver: Optional[Point] = None
    udg_radius: Optional[float] = None
    expected_sinr: Optional[int] = None
    expected_udg: Optional[int] = None
    bounding_box: Tuple[Point, Point] = (Point(-6.0, -6.0), Point(6.0, 6.0))
    description: str = ""

    def sinr_outcome(self) -> Optional[int]:
        """The station actually heard at the receiver under the SINR model."""
        if self.receiver is None:
            return None
        return SINRDiagram(self.network).station_heard_at(self.receiver)

    def udg_outcome(self) -> Optional[int]:
        """The station actually heard at the receiver under the UDG model."""
        if self.receiver is None or self.udg_radius is None:
            return None
        from ..graphs.udg import UnitDiskGraph

        udg = UnitDiskGraph.from_network(self.network, radius=self.udg_radius)
        return udg.station_heard_at(self.receiver)

    def rasterize(self, resolution: int = 200, *, cache=None):
        """Rasterise this panel's bounding box (the figure's pixel data).

        Passing ``cache`` (a :class:`repro.raster.TileCache` or ``True``
        for the process default) serves the raster from the tile cache:
        panels of one figure share a bounding box — and different figures
        often share lattice-aligned sub-boxes — so rendering a figure set
        through one cache recomputes only genuinely new tiles.  The result
        is bit-identical to the uncached rasteriser either way.
        """
        lower_left, upper_right = self.bounding_box
        return SINRDiagram(self.network).rasterize(
            lower_left, upper_right, resolution=resolution, cache=cache
        )

    def matches_expectations(self) -> bool:
        """True if the actual outcomes match the recorded expectations."""
        if self.receiver is None:
            return True
        if self.sinr_outcome() != self.expected_sinr:
            return False
        if self.udg_radius is not None and self.udg_outcome() != self.expected_udg:
            return False
        return True


# ----------------------------------------------------------------------
# Figure 1: reception depends on locations and activity of other stations
# ----------------------------------------------------------------------
_FIG1_BETA = 1.5
_FIG1_NOISE = 0.02
_FIG1_RECEIVER = Point(1.0, -1.0)
_FIG1_S1_A = Point(-3.1, 1.7)
_FIG1_S1_B = Point(2.2, -2.2)
_FIG1_S2 = Point(0.9, 1.3)
_FIG1_S3 = Point(-3.2, 3.5)


def figure1_panels() -> List[FigurePanel]:
    """The three panels of Figure 1 (receiver flips between zones)."""
    box = (Point(-6.0, -6.0), Point(6.0, 6.0))
    panel_a = FigurePanel(
        name="1A",
        network=WirelessNetwork.uniform(
            [_FIG1_S1_A, _FIG1_S2, _FIG1_S3], noise=_FIG1_NOISE, beta=_FIG1_BETA
        ),
        receiver=_FIG1_RECEIVER,
        expected_sinr=1,
        bounding_box=box,
        description="three transmitters; the receiver hears s2",
    )
    panel_b = FigurePanel(
        name="1B",
        network=WirelessNetwork.uniform(
            [_FIG1_S1_B, _FIG1_S2, _FIG1_S3], noise=_FIG1_NOISE, beta=_FIG1_BETA
        ),
        receiver=_FIG1_RECEIVER,
        expected_sinr=None,
        bounding_box=box,
        description="s1 moved next to the receiver; no station is heard",
    )
    panel_c = FigurePanel(
        name="1C",
        network=WirelessNetwork.uniform(
            [_FIG1_S1_B, _FIG1_S2], noise=_FIG1_NOISE, beta=_FIG1_BETA
        ),
        receiver=_FIG1_RECEIVER,
        expected_sinr=0,
        bounding_box=box,
        description="same as (B) but s3 is silent; the receiver hears s1",
    )
    return [panel_a, panel_b, panel_c]


# ----------------------------------------------------------------------
# Figure 2: cumulative interference (UDG false positive)
# ----------------------------------------------------------------------
_FIG2_BETA = 3.0
_FIG2_RADIUS = 5.0
_FIG2_RECEIVER = Point(-1.5, 0.0)
_FIG2_STATIONS = [Point(-4.0, 0.0), Point(2.0, 5.0), Point(2.0, -5.0), Point(6.0, 0.0)]


def figure2_scenario() -> FigurePanel:
    """Figure 2: UDG predicts reception of ``s1``; cumulative SINR interference denies it."""
    return FigurePanel(
        name="2",
        network=WirelessNetwork.uniform(_FIG2_STATIONS, noise=0.0, beta=_FIG2_BETA),
        receiver=_FIG2_RECEIVER,
        udg_radius=_FIG2_RADIUS,
        expected_sinr=None,
        expected_udg=0,
        bounding_box=(Point(-10.0, -10.0), Point(10.0, 10.0)),
        description=(
            "the receiver is in range of s1 only, so the UDG model predicts "
            "reception; the cumulative interference of s2, s3, s4 prevents it "
            "in the SINR model"
        ),
    )


# ----------------------------------------------------------------------
# Figures 3-4: adding stations one at a time (UDG false negatives)
# ----------------------------------------------------------------------
_FIG34_BETA = 2.0
_FIG34_RADIUS = 3.0
_FIG34_RECEIVER = Point(0.6, 1.5)
_FIG34_STATIONS = [
    Point(0.4, 3.0),
    Point(-0.7, 4.0),
    Point(1.1, 0.75),
    Point(2.2, 1.1),
]
#: Expected (sinr, udg) outcome per step (step k = first k stations transmit).
_FIG34_EXPECTED: Dict[int, Tuple[Optional[int], Optional[int]]] = {
    1: (0, 0),
    2: (0, None),
    3: (2, None),
    4: (None, None),
}


def figure3_4_steps() -> List[FigurePanel]:
    """The four transmission steps of Figures 3 and 4.

    Step ``k`` has stations ``s1 .. sk`` transmitting (paper numbering; library
    indices ``0 .. k-1``).  Step 1 is Figure 3; steps 2-4 are Figure 4.
    """
    box = (Point(-5.0, -5.0), Point(5.0, 5.0))
    panels: List[FigurePanel] = []
    for step in range(1, 5):
        stations = _FIG34_STATIONS[:step]
        expected_sinr, expected_udg = _FIG34_EXPECTED[step]
        if step == 1:
            # A single transmitter is outside the WirelessNetwork domain
            # (the paper's model needs >= 2 stations); model it as the
            # two-station network where the second station is "infinitely"
            # far, which leaves reception everywhere on the relevant box.
            network = WirelessNetwork.uniform(
                stations + [Point(1e6, 1e6)], noise=0.0, beta=_FIG34_BETA
            )
        else:
            network = WirelessNetwork.uniform(stations, noise=0.0, beta=_FIG34_BETA)
        panels.append(
            FigurePanel(
                name=f"3-4 step {step}",
                network=network,
                receiver=_FIG34_RECEIVER,
                udg_radius=_FIG34_RADIUS,
                expected_sinr=expected_sinr,
                expected_udg=expected_udg,
                bounding_box=box,
                description=f"stations s1..s{step} transmit",
            )
        )
    return panels


# ----------------------------------------------------------------------
# Figure 5: beta < 1 produces non-convex zones
# ----------------------------------------------------------------------
def figure5_network() -> WirelessNetwork:
    """The Figure 5 regime: uniform power, ``alpha = 2``, ``beta = 0.3``, ``N = 0.05``.

    The three stations are placed as in the figure (roughly an isosceles
    triangle inside ``[-5, 5]^2``); with ``beta < 1`` the reception zones
    overlap and are clearly non-convex.
    """
    return WirelessNetwork.uniform(
        [Point(-2.0, -1.0), Point(2.0, -1.0), Point(0.0, 2.0)],
        noise=0.05,
        beta=0.3,
    )


# ----------------------------------------------------------------------
# Figure 6: the point-location partition
# ----------------------------------------------------------------------
def figure6_network() -> WirelessNetwork:
    """The network used to render the ``H+ / H? / H-`` partition of Figure 6."""
    return WirelessNetwork.uniform(
        [Point(-3.0, 0.0), Point(3.0, 1.0), Point(0.5, 4.0), Point(1.0, -3.5)],
        noise=0.01,
        beta=2.0,
    )


# ----------------------------------------------------------------------
# Figure 7: fatness illustration
# ----------------------------------------------------------------------
def figure7_network() -> WirelessNetwork:
    """A small network whose zone 0 exhibits visibly different delta and Delta."""
    return WirelessNetwork.uniform(
        [Point(0.0, 0.0), Point(2.0, 0.0), Point(2.5, 2.5)],
        noise=0.0,
        beta=2.0,
    )


#: Quick index over every figure generator, used by the experiment harness.
PAPER_FIGURES = {
    "figure1": figure1_panels,
    "figure2": figure2_scenario,
    "figure3_4": figure3_4_steps,
    "figure5": figure5_network,
    "figure6": figure6_network,
    "figure7": figure7_network,
}
