"""Boundary tracing of reception zones.

Two tracing strategies are provided:

* :func:`trace_zone_boundary` — exact-to-tolerance tracing of a single
  reception zone by the ray sweep enabled by the star-shape property
  (Lemma 3.1); this is what the figure exports use for the smooth zone
  outlines.
* :func:`marching_squares` — a generic iso-contour extractor over a raster
  (used for the ``beta < 1`` regime of Figure 5, where zones need not be
  star-shaped around anything and the ray sweep is not applicable, and for
  the null-zone boundary).

Both return polylines as lists of points; closed contours repeat their first
point at the end.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DiagramError
from ..geometry.point import Point
from ..model.reception import ReceptionZone

__all__ = ["trace_zone_boundary", "marching_squares"]


def trace_zone_boundary(
    zone: ReceptionZone, vertices: int = 360, close: bool = True
) -> List[Point]:
    """Trace the boundary of a (star-shaped) reception zone.

    Args:
        zone: the reception zone to trace.
        vertices: number of boundary samples (equally spaced in angle).
        close: whether to append the first point again at the end.

    Raises:
        DiagramError: for degenerate zones.
    """
    if zone.is_degenerate:
        raise DiagramError("cannot trace the boundary of a degenerate zone")
    if vertices < 3:
        raise DiagramError("trace_zone_boundary() needs at least 3 vertices")
    max_radius = zone.search_radius()
    points = [
        zone.boundary_point_along_ray(2.0 * math.pi * k / vertices, max_radius)
        for k in range(vertices)
    ]
    if close:
        points.append(points[0])
    return points


def marching_squares(
    values: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    level: float = 0.0,
) -> List[List[Point]]:
    """Extract iso-contour polylines ``values == level`` from a raster.

    A standard marching-squares pass: every raster cell contributes up to two
    segments obtained by linear interpolation along its edges; segments are
    then chained into polylines.

    Args:
        values: 2-d array of shape ``(len(ys), len(xs))``.
        xs, ys: coordinates of the raster columns and rows.
        level: iso-value to extract.

    Returns:
        A list of polylines (each a list of points).  Closed contours have
        identical first and last points.
    """
    if values.ndim != 2:
        raise DiagramError("marching_squares() expects a 2-d value array")
    rows, columns = values.shape
    if rows != len(ys) or columns != len(xs):
        raise DiagramError("raster shape does not match the coordinate arrays")

    segments: List[Tuple[Point, Point]] = []
    shifted = values - level

    def interpolate(
        xa: float, ya: float, va: float, xb: float, yb: float, vb: float
    ) -> Point:
        if va == vb:
            t = 0.5
        else:
            t = va / (va - vb)
        t = min(1.0, max(0.0, t))
        return Point(xa + t * (xb - xa), ya + t * (yb - ya))

    for r in range(rows - 1):
        for c in range(columns - 1):
            corner_values = (
                shifted[r, c],
                shifted[r, c + 1],
                shifted[r + 1, c + 1],
                shifted[r + 1, c],
            )
            corner_points = (
                (xs[c], ys[r]),
                (xs[c + 1], ys[r]),
                (xs[c + 1], ys[r + 1]),
                (xs[c], ys[r + 1]),
            )
            case = 0
            for bit, value in enumerate(corner_values):
                if value > 0.0:
                    case |= 1 << bit
            if case in (0, 15):
                continue
            crossings: List[Point] = []
            for first, second in ((0, 1), (1, 2), (2, 3), (3, 0)):
                va, vb = corner_values[first], corner_values[second]
                if (va > 0.0) != (vb > 0.0):
                    (xa, ya), (xb, yb) = corner_points[first], corner_points[second]
                    crossings.append(interpolate(xa, ya, va, xb, yb, vb))
            # Pair up crossings: 2 crossings -> one segment; 4 -> two segments
            # (the ambiguous saddle case; the pairing choice is immaterial for
            # area/length summaries).
            for i in range(0, len(crossings) - 1, 2):
                segments.append((crossings[i], crossings[i + 1]))

    return _chain_segments(segments)


def _chain_segments(
    segments: Sequence[Tuple[Point, Point]], tolerance: float = 1e-9
) -> List[List[Point]]:
    """Chain loose segments into polylines by matching endpoints."""
    if not segments:
        return []

    def key(point: Point) -> Tuple[int, int]:
        return (round(point.x / tolerance), round(point.y / tolerance))

    remaining: Dict[int, Tuple[Point, Point]] = dict(enumerate(segments))
    endpoint_index: Dict[Tuple[int, int], List[int]] = {}
    for identifier, (start, end) in remaining.items():
        endpoint_index.setdefault(key(start), []).append(identifier)
        endpoint_index.setdefault(key(end), []).append(identifier)

    def pop_segment_at(point: Point) -> Optional[Tuple[Point, Point]]:
        candidates = endpoint_index.get(key(point), [])
        while candidates:
            identifier = candidates.pop()
            if identifier in remaining:
                return remaining.pop(identifier)
        return None

    polylines: List[List[Point]] = []
    while remaining:
        identifier, (start, end) = next(iter(remaining.items()))
        del remaining[identifier]
        chain = [start, end]
        # Extend forward.
        while True:
            candidate = pop_segment_at(chain[-1])
            if candidate is None:
                break
            first, second = candidate
            chain.append(second if first.is_close(chain[-1], tolerance) else first)
        # Extend backward.
        while True:
            candidate = pop_segment_at(chain[0])
            if candidate is None:
                break
            first, second = candidate
            chain.insert(0, second if first.is_close(chain[0], tolerance) else first)
        polylines.append(chain)
    return polylines
