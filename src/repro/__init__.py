"""repro: SINR Diagrams — an algorithmically usable SINR model of wireless networks.

Reproduction of *SINR Diagrams: Towards Algorithmically Usable SINR Models of
Wireless Networks* (Avin, Emek, Kantor, Lotker, Peleg, Roditty; PODC 2009).

The top-level namespace re-exports the most commonly used types; the full API
lives in the subpackages:

* :mod:`repro.geometry` — planar geometry substrate,
* :mod:`repro.algebra` — polynomials, Sturm sequences, reception polynomials,
* :mod:`repro.model` — stations, networks, reception zones, SINR diagrams,
* :mod:`repro.engine` — the batched query engine (vectorised SINR kernels,
  pluggable backends, bulk point-location),
* :mod:`repro.raster` — the raster tile cache (decompose ``rasterize``
  requests onto a global tile lattice, reuse tiles across overlapping
  requests, bit-identical to the uncached path),
* :mod:`repro.service` — the asyncio micro-batching query service (accumulate
  concurrent ``locate`` awaitables, answer them as one engine call),
* :mod:`repro.graphs` — graph-based baselines (UDG, Quasi-UDG, ...),
* :mod:`repro.pointlocation` — the point-location structures behind the
  unified ``Locator`` protocol and registry, including spatial sharding,
* :mod:`repro.analysis` — convexity / fatness / theorem verification,
* :mod:`repro.diagrams` — raster diagrams, contours, exports, paper figures,
* :mod:`repro.workloads` — network generators and benchmark scenarios.
"""

from . import engine

from .exceptions import (
    AlgebraError,
    DiagramError,
    GeometryError,
    NetworkConfigurationError,
    PointLocationError,
    RasterCacheError,
    ReproError,
)
from .geometry import Point
from .model import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    NO_RECEPTION,
    NetworkDelta,
    RasterDiagram,
    ReceptionZone,
    SINRDiagram,
    Station,
    WirelessNetwork,
)
from .raster import CacheStats, TileCache

__version__ = "1.0.0"

__all__ = [
    "AlgebraError",
    "CacheStats",
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "DiagramError",
    "GeometryError",
    "NO_RECEPTION",
    "NetworkConfigurationError",
    "NetworkDelta",
    "Point",
    "PointLocationError",
    "RasterCacheError",
    "RasterDiagram",
    "ReceptionZone",
    "ReproError",
    "SINRDiagram",
    "Station",
    "TileCache",
    "WirelessNetwork",
    "__version__",
    "engine",
]
