"""repro.raster — the raster tile cache subsystem.

Rasterising an SINR diagram (``SINRDiagram.rasterize``, the numerical
procedure behind the paper's Figures 1–5) costs one full SINR-matrix pass
per pixel grid.  Under serving workloads — figures, ``summary()`` calls,
experiment sweeps, zoom/pan traffic over the same network — overlapping
requests used to recompute identical pixels from scratch.  This package
caches the work at tile granularity and reuses it across requests.

How a request is served
=======================

``SINRDiagram.rasterize(lower_left, upper_right, resolution, cache=...)``
snaps the request onto a per-axis pixel lattice (pitch = box length /
pixel count; pixel centres at ``phase + (g + 0.5) * pitch`` for global
integer indices ``g``), decomposes it onto the global tile lattice —
square blocks of ``tile_size`` pixels anchored at global pixel index 0 —
and assembles the result from tiles, computing only the missing ones
through the active engine backend.  The assembled
:class:`~repro.model.diagram.RasterDiagram` is **bit-identical** to the
uncached path: tiles use the same coordinate formula and the same
per-pixel-independent compute core (:func:`repro.model.diagram.raster_block`),
so caching regroups work without changing a single bit of output.

Keying scheme
=============

Tiles are keyed by everything their content depends on::

    (network fingerprint, engine backend, tile size,
     pitch_x, phase_x, pitch_y, phase_y, tile index x, tile index y)

* the *network fingerprint* (:attr:`repro.model.network.WirelessNetwork.fingerprint`)
  hashes coordinates, powers, noise, beta and alpha — a mutated network is
  automatically a cache miss, while content-identical networks share tiles;
* the *engine backend* is the one active when the request was made
  (pinned for all tiles of one request): registered backends agree only to
  floating-point tolerance, so tiles are never shared across backends and
  bit-identity holds under any ``use_backend`` selection;
* *pitch* is the pixels-per-unit of the request (as world units per pixel);
* *phase* is ``0.0`` for any box whose origin sits on the world-anchored
  lattice of that pitch — such boxes (overlapping figure views, aligned
  zoom/pan traffic) share tiles with each other — and the phase remainder
  otherwise, which still caches perfectly against repeats of the same box.

Budget and statistics
=====================

:class:`TileCache` holds tiles in a thread-safe LRU under a configurable
byte budget (``max_bytes``, default 256 MiB) and exposes
:class:`CacheStats` counters: hits, misses, evictions, rejections
(tiles larger than the whole budget), resident tiles and bytes.
Concurrent misses of one tile are single-flighted, so a burst of
overlapping requests computes each tile once.

Quick use::

    from repro.raster import TileCache

    cache = TileCache(max_bytes=128 * 2**20, tile_size=64)
    raster = diagram.rasterize(lower_left, upper_right, 256, cache=cache)
    print(cache.stats().hit_rate)

``cache=True`` uses the process-wide :func:`default_cache`.  The service
layer's :class:`repro.service.RasterService` wraps one cache behind an
async endpoint for concurrent zoom/pan traffic.
"""

from .cache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_TILE_SIZE,
    CacheStats,
    TileCache,
    default_cache,
    resolve_cache,
)
from .tiles import (
    Tile,
    TileKey,
    affected_boxes,
    compute_tile,
    invalidate_for_delta,
    rasterize_tiled,
    tile_key,
)

__all__ = [
    "CacheStats",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_TILE_SIZE",
    "Tile",
    "TileCache",
    "TileKey",
    "affected_boxes",
    "compute_tile",
    "default_cache",
    "invalidate_for_delta",
    "rasterize_tiled",
    "resolve_cache",
    "tile_key",
]
