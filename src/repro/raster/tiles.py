"""Tile decomposition and assembly on the global raster lattice.

A rasterisation request is a pair of :class:`~repro.model.diagram.RasterLattice`
axes (pitch, phase, global start index, pixel count).  This module maps the
request onto the global tile lattice — square blocks of ``tile_size`` pixels
anchored at global pixel index 0 — fetches each covering tile from a
:class:`~repro.raster.cache.TileCache` (computing only the missing ones
through the active engine backend), and assembles the requested
:class:`~repro.model.diagram.RasterDiagram` from the tile slices.

Bit-identity with the monolithic path is structural, not approximate:

* tile pixel-centre coordinates come from the *same* lattice formula
  (``phase + (g + 0.5) * pitch`` over global indices ``g``) the monolithic
  rasteriser uses, so they are bit-identical floats;
* :func:`~repro.model.diagram.raster_block` computes every per-pixel
  quantity independently per pixel, so evaluating a tile's sub-grid yields
  exactly the values the full grid would.

Tile keys are ``(network fingerprint, engine backend, tile size, pitch and
phase per axis, tile index)``: everything the tile's content depends on
(registered backends agree only to floating-point tolerance, so tiles are
never shared across backends).  Two boxes whose origins sit on the same
pitch lattice share phase ``0.0`` and therefore share tiles; an unaligned
box forms its own lattice family (keyed by its phase remainder) and still
caches perfectly against repeats of itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import PointLocationError
from ..engine.backend import active_backend
from ..model.delta import NetworkDelta, diff_networks
from ..model.diagram import RasterDiagram, RasterLattice, raster_block
from ..model.network import WirelessNetwork
from .cache import TileCache

__all__ = [
    "Tile",
    "TileKey",
    "affected_boxes",
    "compute_tile",
    "invalidate_for_delta",
    "rasterize_tiled",
    "tile_key",
]

#: The full cache key of one tile: ``(network fingerprint, backend, tile
#: size, pitch_x, phase_x, pitch_y, phase_y, tile_x, tile_y)``.  The
#: *backend object* is part of the key because registered backends agree
#: only to floating-point tolerance, not bitwise: a tile computed under
#: ``numpy`` must never answer a request made under ``reference`` (or the
#: bit-identity contract — and seam-freeness within one raster — breaks).
TileKey = Tuple[str, object, int, float, float, float, float, int, int]


@dataclass(frozen=True)
class Tile:
    """One cached ``tile_size`` x ``tile_size`` block of a rasterisation.

    Attributes:
        labels: ``(tile_size, tile_size)`` integer labels (station index or
            ``NO_RECEPTION``), read-only.
        sinr_values: ``(n_stations, tile_size, tile_size)`` float SINR
            values, read-only.
    """

    labels: np.ndarray
    sinr_values: np.ndarray

    @property
    def nbytes(self) -> int:
        """Resident size, used against the cache byte budget."""
        return int(self.labels.nbytes + self.sinr_values.nbytes)


def tile_key(
    fingerprint: str,
    backend,
    tile_size: int,
    lattice_x: RasterLattice,
    lattice_y: RasterLattice,
    tile_x: int,
    tile_y: int,
) -> TileKey:
    """The cache key of tile ``(tile_x, tile_y)`` on the given lattice pair."""
    return (
        fingerprint,
        backend,
        tile_size,
        lattice_x.pitch,
        lattice_x.phase,
        lattice_y.pitch,
        lattice_y.phase,
        tile_x,
        tile_y,
    )


def compute_tile(
    network: WirelessNetwork,
    lattice_x: RasterLattice,
    lattice_y: RasterLattice,
    tile_x: int,
    tile_y: int,
    tile_size: int,
    backend=None,
) -> Tile:
    """Compute one tile through ``backend`` (default: the active backend)."""
    xs = lattice_x.centers_at(tile_x * tile_size, tile_size)
    ys = lattice_y.centers_at(tile_y * tile_size, tile_size)
    labels, sinr_values = raster_block(network, xs, ys, backend=backend)
    labels.setflags(write=False)
    sinr_values.setflags(write=False)
    return Tile(labels=labels, sinr_values=sinr_values)


def affected_boxes(
    old_network: WirelessNetwork,
    new_network: WirelessNetwork,
    delta: NetworkDelta,
) -> List[Tuple[float, float, float, float]]:
    """World rectangles containing every changed station's reception zone.

    One box per touched station, before *and* after the mutation: the
    station's location inflated by its certified enclosing-radius reach —
    the same Theorem 4.1 ``Delta_upper`` bound the sharded locator routes
    by (:func:`repro.pointlocation.bounds.station_reaches`).  A changed
    station can be heard only inside these boxes, so a pixel outside all
    of them keeps its *label* across the mutation — except where another
    station's reception margin is finer than the interference shift the
    move causes (see :func:`invalidate_for_delta` for how that residual
    approximation is scoped).

    Raises :class:`~repro.exceptions.PointLocationError` outside the
    Theorem 4.1 regime (non-uniform power or ``beta <= 1``), where no
    certified reach exists.
    """
    from ..pointlocation.bounds import station_reaches

    boxes: List[Tuple[float, float, float, float]] = []
    for network, touched, reaches in (
        (old_network, delta.touched_old, station_reaches(old_network)),
        (new_network, delta.touched_new, station_reaches(new_network)),
    ):
        coords = network.coords
        for index in touched:
            x, y = float(coords[index, 0]), float(coords[index, 1])
            reach = float(reaches[index])
            boxes.append((x - reach, y - reach, x + reach, y + reach))
    return boxes


def invalidate_for_delta(
    cache: TileCache,
    old_network: WirelessNetwork,
    new_network: WirelessNetwork,
    delta: Optional[NetworkDelta] = None,
) -> Tuple[int, int]:
    """Apply a network mutation to a tile cache: re-key far tiles, drop near.

    The raster layer's incremental-update entry point.  Computes the
    affected-region boxes for ``delta`` (recovered via
    :func:`~repro.model.delta.diff_networks` when omitted) and calls
    :meth:`TileCache.invalidate_region`; returns its ``(rekeyed, dropped)``
    counts.  Falls back to dropping *every* old-fingerprint tile — exactly
    what plain fingerprint keying would do — whenever re-keying cannot be
    justified:

    * the delta changes ``noise``/``beta``/``alpha`` (every pixel is stale);
    * the delta is not index-preserving (station joins/leaves renumber the
      label space and change the ``sinr_values`` row count, so retained
      tile payloads would be shaped for the wrong network);
    * the network is outside the Theorem 4.1 regime (no certified reach).

    Scope of the approximation: a re-keyed tile's labels are exact wherever
    reception margins exceed the interference shift of the moved stations
    (boundary-marginal pixels of *other* stations' zones may flip — the
    same tolerance class as cross-backend float disagreement, which the
    keying scheme already scopes per backend), and its per-station SINR
    values are those of the previous network.  Callers that need
    bit-exact SINR rasters after a mutation should drop instead
    (``cache.invalidate_region(old_fp, new_fp, None)``).
    """
    if delta is None:
        delta = diff_networks(old_network, new_network)
    old_fingerprint = old_network.fingerprint
    new_fingerprint = new_network.fingerprint
    if old_fingerprint == new_fingerprint:
        return (0, 0)
    if delta.params_changed or not delta.index_preserving:
        return cache.invalidate_region(old_fingerprint, new_fingerprint, None)
    try:
        boxes = affected_boxes(old_network, new_network, delta)
    except PointLocationError:
        return cache.invalidate_region(old_fingerprint, new_fingerprint, None)
    return cache.invalidate_region(old_fingerprint, new_fingerprint, boxes)


def rasterize_tiled(
    network: WirelessNetwork,
    lattice_x: RasterLattice,
    lattice_y: RasterLattice,
    cache: TileCache,
) -> RasterDiagram:
    """Assemble a raster from cached lattice tiles (computing missing ones).

    The public entry point is ``SINRDiagram.rasterize(..., cache=...)``,
    which builds the lattices; this function fetches every tile covering
    ``[lattice_x.start, lattice_x.stop) x [lattice_y.start, lattice_y.stop)``
    via :meth:`TileCache.get_or_compute` and copies the overlapping slices
    into the result arrays.  The returned diagram is bit-identical to the
    monolithic path on the same box.
    """
    size = cache.tile_size
    fingerprint = network.fingerprint
    # Pinned once per request: every tile of this raster — cached or
    # computed — belongs to the same backend, so a backend switch mid-burst
    # can never stitch a seam through one assembled diagram.
    backend = active_backend()
    columns, rows = lattice_x.count, lattice_y.count
    gx0, gy0 = lattice_x.start, lattice_y.start

    labels = np.empty((rows, columns), dtype=np.intp)
    sinr_values = np.empty((len(network), rows, columns), dtype=float)

    first_tile_x = gx0 // size
    last_tile_x = (lattice_x.stop - 1) // size
    first_tile_y = gy0 // size
    last_tile_y = (lattice_y.stop - 1) // size
    for tile_y in range(first_tile_y, last_tile_y + 1):
        for tile_x in range(first_tile_x, last_tile_x + 1):
            key = tile_key(
                fingerprint, backend, size, lattice_x, lattice_y, tile_x, tile_y
            )
            tile = cache.get_or_compute(
                key,
                partial(
                    compute_tile,
                    network, lattice_x, lattice_y, tile_x, tile_y, size,
                    backend,
                ),
            )
            # Overlap of this tile with the request, in global pixel indices.
            overlap_x0 = max(gx0, tile_x * size)
            overlap_x1 = min(lattice_x.stop, (tile_x + 1) * size)
            overlap_y0 = max(gy0, tile_y * size)
            overlap_y1 = min(lattice_y.stop, (tile_y + 1) * size)
            out_cols = slice(overlap_x0 - gx0, overlap_x1 - gx0)
            out_rows = slice(overlap_y0 - gy0, overlap_y1 - gy0)
            in_cols = slice(overlap_x0 - tile_x * size, overlap_x1 - tile_x * size)
            in_rows = slice(overlap_y0 - tile_y * size, overlap_y1 - tile_y * size)
            labels[out_rows, out_cols] = tile.labels[in_rows, in_cols]
            sinr_values[:, out_rows, out_cols] = tile.sinr_values[:, in_rows, in_cols]

    return RasterDiagram(
        xs=lattice_x.centers(),
        ys=lattice_y.centers(),
        labels=labels,
        sinr_values=sinr_values,
        pitch=(lattice_x.pitch, lattice_y.pitch),
    )
