"""The thread-safe LRU tile store behind cached rasterisation.

:class:`TileCache` maps :data:`~repro.raster.tiles.TileKey` tuples to
computed :class:`~repro.raster.tiles.Tile` payloads under a configurable
byte budget, evicting least-recently-used tiles when the budget is
exceeded.  It is safe to share one cache between threads (and hence between
the event-loop executor threads of the service's raster endpoint): lookups
and insertions are serialised by a lock, while tile *computation* happens
outside it.  Concurrent requests for the same missing tile are
single-flighted — one caller computes, the others wait for the result —
so a burst of overlapping zoom/pan requests never computes a tile twice.

Statistics (:class:`CacheStats`) count hits, misses, evictions and
rejections (tiles larger than the whole budget, which are computed but
never stored), plus the resident tile count and byte total.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..exceptions import RasterCacheError

__all__ = [
    "CacheStats",
    "TileCache",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_TILE_SIZE",
    "default_cache",
    "resolve_cache",
]

#: Default byte budget: enough for a few dozen 64-pixel tiles of a
#: 50-station network (one such tile is ~1.7 MB of SINR values).
DEFAULT_MAX_BYTES = 256 * 2**20

#: Default tile side length, in pixels.  Small enough that a request only
#: over-computes a thin margin beyond its box, large enough that the
#: per-tile engine call still amortises its dispatch overhead.
DEFAULT_TILE_SIZE = 64


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of one :class:`TileCache`'s counters.

    Attributes:
        hits: lookups answered from the store (including callers that
            waited on another thread's in-flight computation).
        misses: lookups that had to compute the tile.
        evictions: tiles dropped to get back under the byte budget.
        rejected: computed tiles never stored because they alone exceed
            the whole budget.
        tiles: tiles currently resident.
        stored_bytes: bytes currently resident.
        max_bytes: the configured byte budget.
    """

    hits: int
    misses: int
    evictions: int
    rejected: int
    tiles: int
    stored_bytes: int
    max_bytes: int

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0


class TileCache:
    """A byte-budgeted, thread-safe LRU cache of raster tiles.

    Args:
        max_bytes: byte budget for resident tiles; least-recently-used
            tiles are evicted when an insertion exceeds it.
        tile_size: side length of every tile, in pixels.  Part of every
            tile key (two caches with different tile sizes never share
            entries), exposed here so the assembly code and the keys always
            agree.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        tile_size: int = DEFAULT_TILE_SIZE,
    ):
        if max_bytes <= 0:
            raise RasterCacheError(
                f"the tile-cache byte budget must be positive, got {max_bytes}"
            )
        if tile_size < 1:
            raise RasterCacheError(
                f"the tile size must be at least 1 pixel, got {tile_size}"
            )
        self.max_bytes = int(max_bytes)
        self.tile_size = int(tile_size)
        self._lock = threading.Lock()
        self._store: "OrderedDict[tuple, object]" = OrderedDict()
        self._in_flight: Dict[tuple, threading.Event] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0

    # -- lookup ----------------------------------------------------------
    def get_or_compute(self, key: tuple, factory: Callable[[], object]):
        """The tile under ``key``, computing it with ``factory`` on a miss.

        Concurrent misses of the same key are single-flighted: exactly one
        caller runs ``factory`` (outside the lock), the rest wait and then
        re-check the store.  If the computed tile was rejected or already
        evicted by the time a waiter wakes (pathologically small budgets),
        the waiter simply computes its own copy — correctness never depends
        on residency.
        """
        while True:
            with self._lock:
                tile = self._store.get(key)
                if tile is not None:
                    self._store.move_to_end(key)
                    self._hits += 1
                    return tile
                event = self._in_flight.get(key)
                if event is None:
                    event = threading.Event()
                    self._in_flight[key] = event
                    owner = True
                else:
                    owner = False
            if not owner:
                event.wait()
                with self._lock:
                    tile = self._store.get(key)
                    if tile is not None:
                        self._store.move_to_end(key)
                        self._hits += 1
                        return tile
                # Rejected / evicted / failed before we woke: compute our own.
                continue
            try:
                tile = factory()
            except BaseException:
                # Wake waiters so nobody blocks forever; they re-check the
                # store, find nothing, and retry the computation themselves.
                with self._lock:
                    self._in_flight.pop(key, None)
                event.set()
                raise
            with self._lock:
                self._misses += 1
                self._insert_locked(key, tile)
                self._in_flight.pop(key, None)
            event.set()
            return tile

    def _insert_locked(self, key: tuple, tile) -> None:
        """Store ``tile`` and evict LRU entries back under budget.

        The ``_locked`` suffix is the lock-discipline convention (reprolint
        RL002): the caller holds ``self._lock`` for the whole call.
        """
        nbytes = tile.nbytes
        if nbytes > self.max_bytes:
            self._rejected += 1
            return
        previous = self._store.pop(key, None)
        if previous is not None:
            self._bytes -= previous.nbytes
        self._store[key] = tile
        self._bytes += nbytes
        while self._bytes > self.max_bytes:
            old_key, old_tile = self._store.popitem(last=False)
            self._bytes -= old_tile.nbytes
            self._evictions += 1

    # -- introspection ---------------------------------------------------
    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                rejected=self._rejected,
                tiles=len(self._store),
                stored_bytes=self._bytes,
                max_bytes=self.max_bytes,
            )

    def clear(self) -> None:
        """Drop every resident tile (counters other than bytes/tiles remain)."""
        with self._lock:
            self._store.clear()
            self._bytes = 0


# -- the process-wide default cache --------------------------------------
_default_cache: Optional[TileCache] = None
_default_cache_lock = threading.Lock()


def default_cache() -> TileCache:
    """The process-wide default :class:`TileCache` (created on first use).

    This is the cache ``rasterize(..., cache=True)`` uses; long-lived
    deployments that want a different budget should build their own
    :class:`TileCache` and pass it explicitly.
    """
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = TileCache()
        return _default_cache


def resolve_cache(cache) -> TileCache:
    """Normalise a ``cache=`` argument: ``True`` means the process default."""
    if cache is True:
        return default_cache()
    if isinstance(cache, TileCache):
        return cache
    raise RasterCacheError(
        "cache must be a repro.raster.TileCache or True (the process "
        f"default), got {cache!r}"
    )
