"""The thread-safe LRU tile store behind cached rasterisation.

:class:`TileCache` maps :data:`~repro.raster.tiles.TileKey` tuples to
computed :class:`~repro.raster.tiles.Tile` payloads under a configurable
byte budget, evicting least-recently-used tiles when the budget is
exceeded.  It is safe to share one cache between threads (and hence between
the event-loop executor threads of the service's raster endpoint): lookups
and insertions are serialised by a lock, while tile *computation* happens
outside it.  Concurrent requests for the same missing tile are
single-flighted — one caller computes, the others wait for the result —
so a burst of overlapping zoom/pan requests never computes a tile twice.

Statistics (:class:`CacheStats`) count hits, misses, evictions and
rejections (tiles larger than the whole budget, which are computed but
never stored), plus the resident tile count and byte total.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..exceptions import RasterCacheError

__all__ = [
    "CacheStats",
    "TileCache",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_TILE_SIZE",
    "default_cache",
    "resolve_cache",
]

#: Default byte budget: enough for a few dozen 64-pixel tiles of a
#: 50-station network (one such tile is ~1.7 MB of SINR values).
DEFAULT_MAX_BYTES = 256 * 2**20

#: Default tile side length, in pixels.  Small enough that a request only
#: over-computes a thin margin beyond its box, large enough that the
#: per-tile engine call still amortises its dispatch overhead.
DEFAULT_TILE_SIZE = 64


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of one :class:`TileCache`'s counters.

    Attributes:
        hits: lookups answered from the store (including callers that
            waited on another thread's in-flight computation).
        misses: lookups that had to compute the tile.
        evictions: tiles dropped to get back under the byte budget.
        rejected: computed tiles never stored because they alone exceed
            the whole budget.
        rekeyed: tiles carried across a network swap by
            :meth:`TileCache.invalidate_region` (their content is certified
            unaffected by the mutation).
        invalidated: tiles dropped by :meth:`TileCache.invalidate_region`
            (overlapping an affected region, or swept by a full flush).
        tiles: tiles currently resident.
        stored_bytes: bytes currently resident.
        max_bytes: the configured byte budget.
    """

    hits: int
    misses: int
    evictions: int
    rejected: int
    rekeyed: int
    invalidated: int
    tiles: int
    stored_bytes: int
    max_bytes: int

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0


class TileCache:
    """A byte-budgeted, thread-safe LRU cache of raster tiles.

    Args:
        max_bytes: byte budget for resident tiles; least-recently-used
            tiles are evicted when an insertion exceeds it.
        tile_size: side length of every tile, in pixels.  Part of every
            tile key (two caches with different tile sizes never share
            entries), exposed here so the assembly code and the keys always
            agree.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        tile_size: int = DEFAULT_TILE_SIZE,
    ):
        if max_bytes <= 0:
            raise RasterCacheError(
                f"the tile-cache byte budget must be positive, got {max_bytes}"
            )
        if tile_size < 1:
            raise RasterCacheError(
                f"the tile size must be at least 1 pixel, got {tile_size}"
            )
        self.max_bytes = int(max_bytes)
        self.tile_size = int(tile_size)
        self._lock = threading.Lock()
        self._store: "OrderedDict[tuple, object]" = OrderedDict()
        self._in_flight: Dict[tuple, threading.Event] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0
        self._rekeyed = 0
        self._invalidated = 0

    # -- lookup ----------------------------------------------------------
    def get_or_compute(self, key: tuple, factory: Callable[[], object]):
        """The tile under ``key``, computing it with ``factory`` on a miss.

        Concurrent misses of the same key are single-flighted: exactly one
        caller runs ``factory`` (outside the lock), the rest wait and then
        re-check the store.  If the computed tile was rejected or already
        evicted by the time a waiter wakes (pathologically small budgets),
        the waiter simply computes its own copy — correctness never depends
        on residency.
        """
        while True:
            with self._lock:
                tile = self._store.get(key)
                if tile is not None:
                    self._store.move_to_end(key)
                    self._hits += 1
                    return tile
                event = self._in_flight.get(key)
                if event is None:
                    event = threading.Event()
                    self._in_flight[key] = event
                    owner = True
                else:
                    owner = False
            if not owner:
                event.wait()
                with self._lock:
                    tile = self._store.get(key)
                    if tile is not None:
                        self._store.move_to_end(key)
                        self._hits += 1
                        return tile
                # Rejected / evicted / failed before we woke: compute our own.
                continue
            try:
                tile = factory()
            except BaseException:
                # Wake waiters so nobody blocks forever; they re-check the
                # store, find nothing, and retry the computation themselves.
                with self._lock:
                    self._in_flight.pop(key, None)
                event.set()
                raise
            with self._lock:
                self._misses += 1
                self._insert_locked(key, tile)
                self._in_flight.pop(key, None)
            event.set()
            return tile

    def _insert_locked(self, key: tuple, tile) -> None:
        """Store ``tile`` and evict LRU entries back under budget.

        The ``_locked`` suffix is the lock-discipline convention (reprolint
        RL002): the caller holds ``self._lock`` for the whole call.
        """
        nbytes = tile.nbytes
        if nbytes > self.max_bytes:
            self._rejected += 1
            return
        previous = self._store.pop(key, None)
        if previous is not None:
            self._bytes -= previous.nbytes
        self._store[key] = tile
        self._bytes += nbytes
        self._evict_over_budget_locked()

    def _evict_over_budget_locked(self) -> int:
        """Drop LRU tiles until resident bytes fit the budget; count them."""
        evicted = 0
        while self._bytes > self.max_bytes:
            old_key, old_tile = self._store.popitem(last=False)
            self._bytes -= old_tile.nbytes
            self._evictions += 1
            evicted += 1
        return evicted

    # -- runtime retuning ------------------------------------------------
    def set_byte_budget(self, max_bytes: int) -> int:
        """Retune the byte budget at runtime (thread-safe).

        Growing takes effect lazily (future insertions simply fit); shrinking
        evicts least-recently-used tiles immediately until the residents fit
        the new budget, exactly as an over-budget insertion would.  Returns
        the number of tiles evicted by the call.  This is the actuation
        surface of :class:`repro.control.CacheBudgetTuner`.
        """
        if max_bytes <= 0:
            raise RasterCacheError(
                f"the tile-cache byte budget must be positive, got {max_bytes}"
            )
        with self._lock:
            self.max_bytes = int(max_bytes)
            return self._evict_over_budget_locked()

    # -- invalidation ----------------------------------------------------
    def invalidate_region(
        self,
        old_fingerprint: str,
        new_fingerprint: str,
        boxes: Optional[Sequence[Tuple[float, float, float, float]]],
    ) -> Tuple[int, int]:
        """Carry unaffected tiles across a network swap; drop the rest.

        ``boxes`` are world rectangles ``(xmin, ymin, xmax, ymax)`` that
        certifiably contain every region where the mutation can change tile
        content (see :func:`repro.raster.tiles.affected_boxes`).  Every
        resident tile keyed by ``old_fingerprint`` is tested against them:

        * a tile whose world rectangle intersects *any* box is dropped — a
          changed station could be heard somewhere inside it;
        * every other tile is **re-keyed** to ``new_fingerprint`` in place
          (same backend, lattice and index; same LRU position), so requests
          against the new network hit it without recomputation.

        ``boxes=None`` is the conservative full flush: every
        ``old_fingerprint`` tile is dropped (the behaviour fingerprint
        keying alone gives).  Tiles of other fingerprints are untouched.
        Only callers that certify the box cover — normally
        :func:`repro.raster.tiles.invalidate_for_delta`, which falls back
        to ``None`` whenever it cannot — should pass a box list.

        Returns ``(rekeyed, dropped)`` counts.
        """
        if new_fingerprint == old_fingerprint:
            raise RasterCacheError(
                "invalidate_region needs distinct old/new fingerprints "
                "(an unchanged network has nothing to invalidate)"
            )
        rekeyed = 0
        dropped = 0
        with self._lock:
            survivors: "OrderedDict[tuple, object]" = OrderedDict()
            for key, tile in self._store.items():
                if key[0] != old_fingerprint:
                    survivors[key] = tile
                    continue
                if boxes is None or self._tile_touches_any(key, boxes):
                    self._bytes -= tile.nbytes
                    dropped += 1
                    continue
                survivors[(new_fingerprint,) + key[1:]] = tile
                rekeyed += 1
            self._store = survivors
            self._rekeyed += rekeyed
            self._invalidated += dropped
        return rekeyed, dropped

    @staticmethod
    def _tile_touches_any(
        key: tuple, boxes: Sequence[Tuple[float, float, float, float]]
    ) -> bool:
        """Closed-rectangle overlap of a tile key's world extent with any box.

        The key layout is the :data:`repro.raster.tiles.TileKey` tuple
        ``(fingerprint, backend, tile_size, pitch_x, phase_x, pitch_y,
        phase_y, tile_x, tile_y)``; tile ``t`` on an axis spans
        ``[phase + t * size * pitch, phase + (t + 1) * size * pitch]``,
        which contains all of its pixel centres.
        """
        size = key[2]
        pitch_x, phase_x, pitch_y, phase_y, tile_x, tile_y = key[3:9]
        xmin = phase_x + tile_x * size * pitch_x
        xmax = phase_x + (tile_x + 1) * size * pitch_x
        ymin = phase_y + tile_y * size * pitch_y
        ymax = phase_y + (tile_y + 1) * size * pitch_y
        for bx0, by0, bx1, by1 in boxes:
            if xmin <= bx1 and bx0 <= xmax and ymin <= by1 and by0 <= ymax:
                return True
        return False

    # -- introspection ---------------------------------------------------
    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                rejected=self._rejected,
                rekeyed=self._rekeyed,
                invalidated=self._invalidated,
                tiles=len(self._store),
                stored_bytes=self._bytes,
                max_bytes=self.max_bytes,
            )

    def metrics_sample(self) -> Dict[str, float]:
        """The counters as one flat numeric sample, derived rates included.

        The :class:`~repro.runtime.StatsSource` protocol: every
        :class:`CacheStats` field as a float, plus the derived
        ``requests`` / ``hit_rate`` the budget tuners key off.
        """
        stats = self.stats()
        sample = {name: float(value) for name, value in asdict(stats).items()}
        sample["requests"] = float(stats.requests)
        sample["hit_rate"] = float(stats.hit_rate)
        return sample

    def clear(self) -> None:
        """Drop every resident tile (counters other than bytes/tiles remain)."""
        with self._lock:
            self._store.clear()
            self._bytes = 0


# -- the process-wide default cache --------------------------------------
_default_cache: Optional[TileCache] = None
_default_cache_lock = threading.Lock()


def default_cache() -> TileCache:
    """The process-wide default :class:`TileCache` (created on first use).

    This is the cache ``rasterize(..., cache=True)`` uses; long-lived
    deployments that want a different budget should build their own
    :class:`TileCache` and pass it explicitly.
    """
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = TileCache()
        return _default_cache


def resolve_cache(cache) -> TileCache:
    """Normalise a ``cache=`` argument: ``True`` means the process default."""
    if cache is True:
        return default_cache()
    if isinstance(cache, TileCache):
        return cache
    raise RasterCacheError(
        "cache must be a repro.raster.TileCache or True (the process "
        f"default), got {cache!r}"
    )
