"""The controller protocol: a metrics sink whose observations actuate knobs.

A controller registers with a :class:`~repro.obs.MetricsHub` exactly like a
sink — the hub calls ``emit(record)`` on every tick.  :class:`Controller`
splits that into policy and plumbing: ``emit`` checks an optional *gate*
(a callable that returns ``True`` while actuation must pause, e.g. during
an epoch swap's drain window) and then hands the record to the subclass's
``observe``.  Gated records are counted, not queued — control laws are
written against fresh state, and a decision computed before a swap must
not fire after it.

Controllers are :class:`~repro.runtime.Component`\\ s with a *passive*
lifecycle: they own no tasks, so ``start()`` is optional and exists for
uniform composition under a :class:`~repro.runtime.Runtime`.  ``stop()``
retires the control law for good — a closed controller rejects further
``emit`` calls with :class:`~repro.exceptions.ControlClosedError` rather
than silently actuating a knob on behalf of a stack that is shutting down.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..exceptions import ControlClosedError, ControlError
from ..obs.hub import MetricsRecord
from ..runtime.component import Component

__all__ = ["Controller"]


class Controller(Component):
    """Base class for closed-loop controllers fed by a metrics hub.

    Subclasses implement ``observe(record)``; everything else (the sink
    protocol, the gate, the observed/skipped counters, the Component
    lifecycle) lives here.  The hub serialises emits — one tick finishes
    before the next begins — so ``observe`` never runs concurrently with
    itself.
    """

    lifecycle_error = ControlError
    closed_error = ControlClosedError

    def __init__(self) -> None:
        self._gate: Optional[Callable[[], bool]] = None
        self.observed = 0
        self.skipped = 0

    def set_gate(self, gate: Optional[Callable[[], bool]]) -> None:
        """Install ``gate``; while it returns ``True``, records are skipped."""
        self._gate = gate

    def emit(self, record: MetricsRecord) -> None:
        """Sink-protocol entry point called by the hub on every tick."""
        self._ensure_open()
        gate = self._gate
        if gate is not None and gate():
            self.skipped += 1
            return
        self.observed += 1
        self.observe(record)

    def observe(self, record: MetricsRecord) -> None:
        """Apply the control law to one fresh record (subclass hook)."""
        raise NotImplementedError
