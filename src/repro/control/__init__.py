"""Closed-loop adaptive control over the serving stack's tuning knobs.

Controllers consume :class:`repro.obs.MetricsRecord` snapshots through the
metrics hub's sink protocol and actuate the runtime retuning surfaces the
rest of the stack exposes:

* :class:`AdaptiveLatencyBudget` — AIMD on
  :meth:`repro.service.MicroBatcher.set_latency_budget`, keyed off the
  seal-wait p99 (SLO) and the in-flight batch count (congestion);
* :class:`CacheBudgetTuner` — eviction-slope / hit-rate feedback on
  :meth:`repro.raster.TileCache.set_byte_budget`;
* :class:`ChunkBytesTuner` — a one-shot measured sweep installing the best
  engine chunk budget via :func:`repro.engine.set_chunk_byte_budget`.

``QueryService(controller=...)`` and ``RasterService(controller=...)`` wire
a controller into their own metrics plumbing, including gating actuation
off during epoch swaps.
"""

from .base import Controller
from .cache import CacheBudgetTuner
from .chunk import ChunkBytesTuner, DEFAULT_CHUNK_CANDIDATES
from .latency import AdaptiveLatencyBudget

__all__ = [
    "AdaptiveLatencyBudget",
    "CacheBudgetTuner",
    "ChunkBytesTuner",
    "Controller",
    "DEFAULT_CHUNK_CANDIDATES",
]
