"""Closed-loop tuning of the raster tile cache's byte budget.

:class:`CacheBudgetTuner` watches a :func:`repro.obs.cache_stats_source`
stream and retunes :meth:`repro.raster.TileCache.set_byte_budget`.  The
cache counters are cumulative, so the tuner works on per-interval deltas:

* **grow** when the cache is thrashing — the last interval evicted tiles
  *and* its hit rate fell short of the target, i.e. evicted tiles are
  being recomputed.  Growth is multiplicative (thrashing working sets are
  usually much larger than the budget, not slightly).
* **shrink** when the budget is demonstrably idle — no evictions, no
  misses, and the resident bytes sit well under the budget.  The shrink
  never cuts below the resident set (shrinking an efficient cache must not
  evict anything), so it reclaims headroom, not hot tiles.
* **hold** otherwise.

The first record only seeds the delta baseline.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..exceptions import ControlError, ObservabilityError
from ..obs.hub import MetricsRecord
from .base import Controller

__all__ = ["CacheBudgetTuner"]


class CacheBudgetTuner(Controller):
    """Eviction-slope / hit-rate driven tile-cache budget tuner.

    Args:
        source: hub source name carrying the cache stats.
        min_bytes, max_bytes: budget clamp, in bytes.
        target_hit_rate: interval hit rate below which evictions count as
            thrashing.
        grow_factor: multiplicative growth on thrashing (> 1).
        shrink_factor: multiplicative shrink on idleness (in ``(0, 1)``);
            also the occupancy fraction under which a budget counts as
            underfull.
    """

    def __init__(
        self,
        source: str = "cache",
        min_bytes: int = 16 * 2**20,
        max_bytes: int = 1024 * 2**20,
        target_hit_rate: float = 0.8,
        grow_factor: float = 1.5,
        shrink_factor: float = 0.8,
    ):
        super().__init__()
        if min_bytes <= 0:
            raise ControlError(f"min_bytes must be positive, got {min_bytes}")
        if max_bytes < min_bytes:
            raise ControlError(
                f"max_bytes ({max_bytes}) must be >= min_bytes ({min_bytes})"
            )
        if not 0.0 <= target_hit_rate <= 1.0:
            raise ControlError(
                f"target_hit_rate must be in [0, 1], got {target_hit_rate}"
            )
        if grow_factor <= 1.0:
            raise ControlError(f"grow_factor must be > 1, got {grow_factor}")
        if not 0.0 < shrink_factor < 1.0:
            raise ControlError(
                f"shrink_factor must be in (0, 1), got {shrink_factor}"
            )
        self.source = source
        self.min_bytes = int(min_bytes)
        self.max_bytes = int(max_bytes)
        self.target_hit_rate = float(target_hit_rate)
        self.grow_factor = float(grow_factor)
        self.shrink_factor = float(shrink_factor)
        self._cache = None
        self._last: Optional[Tuple[float, float, float]] = None  # hits, misses, evictions
        self.grows = 0
        self.shrinks = 0
        self.holds = 0
        self.missing = 0

    def bind(self, cache) -> "CacheBudgetTuner":
        """Attach the cache whose ``set_byte_budget`` this tuner actuates."""
        self._cache = cache
        return self

    def observe(self, record: MetricsRecord) -> None:
        if self._cache is None:
            raise ControlError(
                "CacheBudgetTuner must be bound to a cache before it "
                "observes records (call bind())"
            )
        try:
            metrics = record.source(self.source)
        except ObservabilityError:
            self.missing += 1
            return
        hits = metrics.get("hits", 0.0)
        misses = metrics.get("misses", 0.0)
        evictions = metrics.get("evictions", 0.0)
        previous = self._last
        self._last = (hits, misses, evictions)
        if previous is None:
            self.holds += 1
            return
        d_hits = hits - previous[0]
        d_misses = misses - previous[1]
        d_evictions = evictions - previous[2]
        d_requests = d_hits + d_misses
        budget = float(metrics.get("max_bytes", self._cache.max_bytes))
        stored = float(metrics.get("stored_bytes", 0.0))

        if d_evictions > 0.0 and budget < self.max_bytes:
            interval_hit_rate = d_hits / d_requests if d_requests else 0.0
            if interval_hit_rate < self.target_hit_rate:
                grown = min(self.max_bytes, int(budget * self.grow_factor))
                self._cache.set_byte_budget(grown)
                self.grows += 1
                return
        if (
            d_evictions == 0.0
            and d_misses == 0.0
            and budget > self.min_bytes
            and stored < self.shrink_factor * budget
        ):
            shrunk = max(self.min_bytes, int(budget * self.shrink_factor))
            shrunk = max(shrunk, int(stored))  # never evict a warm resident set
            if shrunk < budget:
                self._cache.set_byte_budget(shrunk)
                self.shrinks += 1
                return
        self.holds += 1
