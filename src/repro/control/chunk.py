"""One-shot auto-tuning of the engine's chunk byte budget.

The chunked batch kernels stream query points through fixed-size chunks;
PR 3's benchmarking found the counter-intuitive result that small (4 MiB)
chunks beat large (64 MiB) ones — the working set stays in cache and the
allocator stops churning.  The best size is still machine- and
network-dependent, so :class:`ChunkBytesTuner` measures instead of
assuming: it times a caller-supplied probe under each candidate budget and
installs the winner process-wide via
:func:`repro.engine.set_chunk_byte_budget`.

Unlike the latency and cache controllers this is not a per-tick feedback
loop — chunk sizing is a property of the machine, not of the traffic — so
the tuner runs once (typically at service startup or from a benchmark
harness) rather than subscribing to a hub.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..engine.batch import set_chunk_byte_budget
from ..exceptions import ControlError

__all__ = ["ChunkBytesTuner", "DEFAULT_CHUNK_CANDIDATES"]

#: The PR 3 sweep grid: small-beats-large made 4 MiB the default, but the
#: crossover point moves with core count and cache sizes.
DEFAULT_CHUNK_CANDIDATES: Tuple[int, ...] = (
    4 * 2**20,
    16 * 2**20,
    64 * 2**20,
)


class ChunkBytesTuner:
    """Sweeps chunk-budget candidates over a probe and installs the winner.

    Args:
        candidates: chunk byte budgets to try, each positive.
        repeats: timed runs per candidate; the per-candidate score is the
            minimum (noise-robust for short probes).
        timer: monotonic clock used for scoring — injectable for
            deterministic tests; defaults to :func:`time.perf_counter`.
    """

    def __init__(
        self,
        candidates: Sequence[int] = DEFAULT_CHUNK_CANDIDATES,
        repeats: int = 2,
        timer: Optional[Callable[[], float]] = None,
    ):
        candidates = tuple(int(c) for c in candidates)
        if not candidates:
            raise ControlError("candidates must be a non-empty sequence")
        if any(c <= 0 for c in candidates):
            raise ControlError(
                f"every chunk-budget candidate must be positive, got {candidates}"
            )
        if repeats < 1:
            raise ControlError(f"repeats must be >= 1, got {repeats}")
        self.candidates = candidates
        self.repeats = int(repeats)
        self._timer = timer if timer is not None else time.perf_counter
        self.timings: Dict[int, float] = {}
        self.chosen: Optional[int] = None

    def tune(self, probe: Callable[[], object]) -> int:
        """Time ``probe`` under each candidate; install and return the best.

        The winning budget is left installed as the process-wide override
        (:func:`repro.engine.set_chunk_byte_budget`); per-candidate scores
        are kept in :attr:`timings`.  If the probe raises, the override is
        cleared back to the environment-knob default before propagating.
        """
        timings: Dict[int, float] = {}
        try:
            for candidate in self.candidates:
                set_chunk_byte_budget(candidate)
                best = float("inf")
                for _ in range(self.repeats):
                    started = self._timer()
                    probe()
                    best = min(best, self._timer() - started)
                timings[candidate] = best
        except BaseException:
            set_chunk_byte_budget(None)
            raise
        self.timings = timings
        self.chosen = min(timings, key=timings.__getitem__)
        set_chunk_byte_budget(self.chosen)
        return self.chosen
