"""AIMD control of the micro-batcher's latency budget.

The latency budget is the classic batching trade-off: a large budget lets
batches fill (amortising per-batch dispatch overhead), a small one bounds
how long a lonely query waits for batch-mates.  No static setting wins on
both sides of a load shift, so :class:`AdaptiveLatencyBudget` closes the
loop: it watches the service's metrics records and retunes
:meth:`repro.service.MicroBatcher.set_latency_budget` with an
additive-increase / multiplicative-decrease law.

The signals, in priority order:

1. **SLO breach** — the seal-wait p99 exceeds the target while the budget
   is above its floor: shrink multiplicatively.  Waits approach the budget
   whenever traffic is too light to size-seal, so this is what walks the
   budget back down after a burst passes.
2. **Pressure** — sealed batches are piling up at the dispatch executor
   (``inflight_batches`` at or above the threshold): grow additively, so
   batches fill further and per-batch overhead stops compounding the
   backlog.  The *unsealed* queue depth is deliberately not the signal:
   the dispatcher seals freely under overload, so backlog shows up as
   in-flight batches, not queued entries.
3. **Light traffic** — the arrival rate over the last interval would fill
   only a trivial batch within the whole budget: shrink, the budget is
   buying waiting instead of batching.

Anything else holds.  The controller starts at the *floor*: growth costs a
few ticks after load arrives, but an idle or light service never pays
budget-sized waits while the loop converges.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

from ..env import CONTROL_BUDGET_CAP, CONTROL_WAIT_TARGET, read_float_knob
from ..exceptions import ControlError, ObservabilityError
from ..obs.hub import MetricsRecord
from .base import Controller

__all__ = ["AdaptiveLatencyBudget"]

#: Default budget floor: a quarter millisecond still lets a dense burst
#: coalesce while costing a lone query essentially nothing.
DEFAULT_MIN_BUDGET = 0.00025

#: Trace entries retained (each budget change appends one).
DEFAULT_TRACE_SIZE = 1024


class AdaptiveLatencyBudget(Controller):
    """AIMD tuner for a :class:`repro.service.MicroBatcher` latency budget.

    Args:
        source: name of the hub source to read (a
            :func:`repro.obs.query_service_source`-shaped mapping with
            ``wait_p99``, ``inflight_batches`` and ``submitted``).
        min_budget: budget floor in seconds; also the starting point.
        max_budget: budget cap in seconds; defaults to the
            ``REPRO_CONTROL_BUDGET_CAP`` knob (0.02 s).
        target_wait_p99: seal-wait SLO in seconds; defaults to the
            ``REPRO_CONTROL_WAIT_TARGET`` knob (0.02 s).
        increase: additive growth per pressured tick, in seconds.
        decrease: multiplicative shrink factor in ``(0, 1)``.
        pressure_inflight: in-flight batch count that signals congestion.
        light_batch: expected batch size at or below which the budget is
            considered to buy waiting, not batching.
    """

    def __init__(
        self,
        source: str = "service",
        min_budget: float = DEFAULT_MIN_BUDGET,
        max_budget: Optional[float] = None,
        target_wait_p99: Optional[float] = None,
        increase: float = 0.001,
        decrease: float = 0.7,
        pressure_inflight: int = 3,
        light_batch: float = 2.0,
        trace_size: int = DEFAULT_TRACE_SIZE,
    ):
        super().__init__()
        if max_budget is None:
            max_budget = read_float_knob(CONTROL_BUDGET_CAP, 0.02)
        if target_wait_p99 is None:
            target_wait_p99 = read_float_knob(CONTROL_WAIT_TARGET, 0.02)
        if min_budget < 0.0:
            raise ControlError(f"min_budget must be >= 0, got {min_budget}")
        if max_budget < min_budget:
            raise ControlError(
                f"max_budget ({max_budget}) must be >= min_budget ({min_budget})"
            )
        if increase <= 0.0:
            raise ControlError(f"the additive increase must be > 0, got {increase}")
        if not 0.0 < decrease < 1.0:
            raise ControlError(
                f"the multiplicative decrease must be in (0, 1), got {decrease}"
            )
        if target_wait_p99 <= 0.0:
            raise ControlError(
                f"target_wait_p99 must be > 0, got {target_wait_p99}"
            )
        if pressure_inflight < 1:
            raise ControlError(
                f"pressure_inflight must be >= 1, got {pressure_inflight}"
            )
        if light_batch < 0.0:
            raise ControlError(f"light_batch must be >= 0, got {light_batch}")
        if trace_size < 1:
            raise ControlError(f"trace_size must be >= 1, got {trace_size}")
        self.source = source
        self.min_budget = float(min_budget)
        self.max_budget = float(max_budget)
        self.target_wait_p99 = float(target_wait_p99)
        self.increase = float(increase)
        self.decrease = float(decrease)
        self.pressure_inflight = int(pressure_inflight)
        self.light_batch = float(light_batch)
        self._batcher = None
        self._budget = self.min_budget
        self._last: Optional[Tuple[float, float]] = None  # (timestamp, submitted)
        self.grows = 0
        self.shrinks = 0
        self.holds = 0
        self.missing = 0
        self._trace: Deque[Tuple[float, float]] = deque(maxlen=trace_size)

    # -- binding ---------------------------------------------------------
    def bind(self, batcher) -> "AdaptiveLatencyBudget":
        """Attach the batcher to actuate and apply the starting budget."""
        self._batcher = batcher
        self._apply(self._budget, timestamp=float("nan"))
        return self

    @property
    def budget(self) -> float:
        """The budget this controller last applied (starts at the floor)."""
        return self._budget

    def trace(self) -> Tuple[Tuple[float, float], ...]:
        """``(record timestamp, budget)`` pairs, one per applied change."""
        return tuple(self._trace)

    # -- the control law -------------------------------------------------
    def observe(self, record: MetricsRecord) -> None:
        if self._batcher is None:
            raise ControlError(
                "AdaptiveLatencyBudget must be bound to a batcher before it "
                "observes records (call bind())"
            )
        try:
            metrics = record.source(self.source)
        except ObservabilityError:
            self.missing += 1
            return
        submitted = metrics.get("submitted", 0.0)
        previous = self._last
        self._last = (record.timestamp, submitted)
        if previous is None:
            self.holds += 1
            return

        wait_p99 = metrics.get("wait_p99", float("nan"))
        inflight = metrics.get("inflight_batches", 0.0)
        budget = self._budget

        if (
            not math.isnan(wait_p99)
            and wait_p99 > self.target_wait_p99
            and budget > self.min_budget
        ):
            self._apply(max(self.min_budget, budget * self.decrease), record.timestamp)
            self.shrinks += 1
            return
        if inflight >= self.pressure_inflight and budget < self.max_budget:
            self._apply(min(self.max_budget, budget + self.increase), record.timestamp)
            self.grows += 1
            return
        elapsed = record.timestamp - previous[0]
        arrived = submitted - previous[1]
        if elapsed > 0.0 and budget > self.min_budget:
            expected_batch = (arrived / elapsed) * budget
            if expected_batch <= self.light_batch:
                self._apply(
                    max(self.min_budget, budget * self.decrease), record.timestamp
                )
                self.shrinks += 1
                return
        self.holds += 1

    def _apply(self, budget: float, timestamp: float) -> None:
        self._budget = budget
        self._batcher.set_latency_budget(budget)
        self._trace.append((timestamp, budget))
