"""The unified ``Locator`` protocol and the name-based locator registry.

Every network-level point-location implementation in this package answers the
same question — "which station (if any) hears this point?" — but the
implementations historically grew ad-hoc surfaces.  This module pins down the
one contract they all share and makes them discoverable by name, mirroring
the engine's backend registry (:mod:`repro.engine.backend`):

The ``Locator`` contract
========================

* ``locate(point) -> int`` — the index of the station heard at the point, or
  :data:`repro.engine.batch.NO_RECEPTION` (``-1``) when nothing is heard;
* ``locate_batch(points) -> numpy.ndarray`` — the same answer for an
  ``(m, 2)`` batch, always as an ``int64`` array with ``-1`` as the
  no-reception sentinel, in query order;
* a ``network`` attribute and a class-level ``build(network, **options)``
  factory, which is what the registry hands out.

The registry
============

``register_locator(name, factory)`` / ``get_locator(name)`` /
``available_locators()`` manage the name -> factory mapping behind a lock, so
registration is safe from any thread.  ``use_locator(name)`` selects a
default locator factory for the current thread / asyncio task (a
:class:`contextvars.ContextVar`, usable as a context manager exactly like
:func:`repro.engine.backend.use_backend`), which lets harnesses sweep
locators without threading a parameter through every call.

Composed names: ``"sharded:<inner>"`` resolves to a factory that builds a
:class:`~repro.pointlocation.sharded.ShardedLocator` wrapping the named inner
locator per shard, so e.g. ``get_locator("sharded:theorem3")`` works anywhere
a plain name does.  The registered locator matrix lives in the package
docstring (:mod:`repro.pointlocation`).
"""

from __future__ import annotations

import threading
from contextvars import ContextVar, Token
from typing import TYPE_CHECKING, Dict, Protocol, Union, runtime_checkable

import numpy as np

from ..exceptions import PointLocationError
from ..geometry.point import Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..model.network import WirelessNetwork

__all__ = [
    "Locator",
    "LocatorFactory",
    "register_locator",
    "available_locators",
    "get_locator",
    "build_locator",
    "active_locator",
    "use_locator",
]


@runtime_checkable
class Locator(Protocol):
    """The contract every network-level point locator implements.

    ``locate`` answers one query with the heard station's index (``-1`` when
    no station is heard); ``locate_batch`` answers an ``(m, 2)`` batch with an
    ``int64`` array using the same sentinel.  Batch answers agree with the
    scalar loop pointwise (away from measure-zero nearest-station ties, where
    tie-breaks may differ between scalar and vectorised front-ends).
    """

    name: str

    def locate(self, point: Point) -> int: ...

    def locate_batch(self, points: object) -> np.ndarray: ...


@runtime_checkable
class LocatorFactory(Protocol):
    """Anything with a ``build(network, **options) -> Locator`` entry point.

    Locator classes themselves satisfy this via a ``build`` classmethod; the
    registry also hands out bound factories for composed names such as
    ``"sharded:voronoi"``.
    """

    def build(self, network: "WirelessNetwork", **options: object) -> Locator: ...


_LOCATORS: Dict[str, LocatorFactory] = {}
_registry_lock = threading.Lock()

#: The active *selection* for harnesses that want a context-default locator:
#: a name stays a name and is re-resolved on every :func:`active_locator`
#: call (so re-registration under an active name takes effect immediately),
#: mirroring the engine backend registry.
_selection: ContextVar[Union[str, LocatorFactory]] = ContextVar(
    "repro_pointlocation_locator", default="voronoi"
)

#: Separator of composed locator names (``sharded:<inner>``).
_COMPOSE_SEPARATOR = ":"


class _ComposedFactory:
    """Factory for a composed name: binds the inner locator name as an option.

    ``get_locator("sharded:voronoi")`` returns one of these; its ``build``
    forwards to the outer factory with ``inner="voronoi"`` merged into the
    options (explicitly passed options win).
    """

    def __init__(self, outer: LocatorFactory, inner_name: str) -> None:
        self._outer = outer
        self._inner_name = inner_name

    def build(self, network: "WirelessNetwork", **options: object) -> Locator:
        options.setdefault("inner", self._inner_name)
        return self._outer.build(network, **options)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ComposedFactory({self._outer!r}, inner={self._inner_name!r})"


def register_locator(name: str, factory: LocatorFactory) -> None:
    """Register ``factory`` under ``name`` (overwriting any previous one).

    Safe to call from any thread.  Composed names cannot be registered
    directly — the ``sharded:`` prefix is resolved dynamically so that every
    registered inner locator is immediately sweepable through it.
    """
    if _COMPOSE_SEPARATOR in name:
        raise PointLocationError(
            f"locator names must not contain {_COMPOSE_SEPARATOR!r}; "
            f"composed names like 'sharded:voronoi' are derived, not registered"
        )
    with _registry_lock:
        _LOCATORS[name] = factory


def available_locators() -> Dict[str, LocatorFactory]:
    """Name -> factory mapping of everything registered (a snapshot copy).

    Only base names are listed; every name that supports inner composition
    (currently ``"sharded"``) additionally accepts the ``sharded:<inner>``
    spelling through :func:`get_locator`.
    """
    with _registry_lock:
        return dict(_LOCATORS)


def get_locator(name: "str | LocatorFactory | None" = None) -> LocatorFactory:
    """Resolve a locator factory: None -> the active one, a str -> by name.

    Composed names (``"sharded:voronoi"``, ``"sharded:theorem3"``, even
    ``"sharded:sharded:voronoi"``) resolve recursively: the prefix must be a
    registered factory that accepts an ``inner=`` build option, and the
    remainder must itself resolve.  Anything that is not ``None`` or a string
    is returned as-is (an explicitly constructed factory).
    """
    if name is None:
        return active_locator()
    if isinstance(name, str):
        base, separator, inner = name.partition(_COMPOSE_SEPARATOR)
        # Lock-free read: dict lookups are atomic under the GIL; the lock
        # only serialises writers (same policy as the engine registry).
        factory = _LOCATORS.get(base)
        if factory is None:
            raise PointLocationError(
                f"unknown locator {base!r}; available: {sorted(_LOCATORS)} "
                f"(plus 'sharded:<inner>' compositions)"
            )
        if separator:
            get_locator(inner)  # validate the inner name eagerly
            return _ComposedFactory(factory, inner)
        return factory
    return name


def build_locator(
    network: "WirelessNetwork",
    name: "str | LocatorFactory | None" = None,
    **options: object,
) -> Locator:
    """Resolve and build in one call: the service-layer lookup hook.

    ``build_locator(network, "sharded:voronoi", shards=8)`` is exactly
    ``get_locator("sharded:voronoi").build(network, shards=8)``; ``None``
    builds the context's active selection (:func:`use_locator`).  The async
    query service (:mod:`repro.service`) and harnesses that take a locator
    spec as data go through this instead of pairing the two calls.
    """
    return get_locator(name).build(network, **options)


def active_locator() -> LocatorFactory:
    """The locator factory harnesses use when none is named explicitly.

    Resolved from the current context's selection, so each thread and async
    task sees its own :func:`use_locator` choices (falling back to
    ``"voronoi"`` — the exact ``O(n)``-per-query baseline — where none was
    made).
    """
    selected = _selection.get()
    if isinstance(selected, str):
        return get_locator(selected)
    return selected


class _LocatorSelection:
    """Result of :func:`use_locator`: effective immediately, optional context manager."""

    def __init__(
        self,
        token: "Token[Union[str, LocatorFactory]] | None",
        selected: "str | LocatorFactory",
    ) -> None:
        self._token = token
        self._selected = selected

    @property
    def factory(self) -> LocatorFactory:
        return get_locator(self._selected)

    def __enter__(self) -> LocatorFactory:
        return self.factory

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            _selection.reset(self._token)
            self._token = None


def use_locator(name: "str | LocatorFactory") -> _LocatorSelection:
    """Make ``name`` the active locator selection in the current context.

    Takes effect immediately for the current thread / async task; as a
    context manager the previous selection is restored on exit, also when an
    exception escapes the block, and nested selections unwind in order.
    """
    get_locator(name)  # resolve eagerly so an unknown name raises here
    token = _selection.set(name)
    return _LocatorSelection(token, name)
