"""The unified ``Locator`` protocol and the name-based locator registry.

Every network-level point-location implementation in this package answers the
same question — "which station (if any) hears this point?" — but the
implementations historically grew ad-hoc surfaces.  This module pins down the
one contract they all share and makes them discoverable by name, mirroring
the engine's backend registry (:mod:`repro.engine.backend`):

The ``Locator`` contract
========================

* ``locate(point) -> int`` — the index of the station heard at the point, or
  :data:`repro.engine.batch.NO_RECEPTION` (``-1``) when nothing is heard;
* ``locate_batch(points) -> numpy.ndarray`` — the same answer for an
  ``(m, 2)`` batch, always as an ``int64`` array with ``-1`` as the
  no-reception sentinel, in query order;
* a ``network`` attribute and a class-level ``build(network, **options)``
  factory, which is what the registry hands out.

The registry
============

``register_locator(name, factory)`` / ``get_locator(name)`` /
``available_locators()`` manage the name -> factory mapping behind a lock, so
registration is safe from any thread.  ``use_locator(name)`` selects a
default locator factory for the current thread / asyncio task (a
:class:`contextvars.ContextVar`, usable as a context manager exactly like
:func:`repro.engine.backend.use_backend`), which lets harnesses sweep
locators without threading a parameter through every call.

Composed names: ``"sharded:<inner>"`` resolves to a factory that builds a
:class:`~repro.pointlocation.sharded.ShardedLocator` wrapping the named inner
locator per shard, so e.g. ``get_locator("sharded:theorem3")`` works anywhere
a plain name does.  The registered locator matrix lives in the package
docstring (:mod:`repro.pointlocation`).

Since the runtime unification, the registry machinery is one
:class:`repro.runtime.Registry` instantiation (:data:`LOCATORS`, kind
``"locator"``, with the composed-name hook enabled): this module
contributes the protocols and the composition semantics, keeps the
historical function surface as thin delegates, and a selection can cross a
process boundary as the spec string ``"locator/<name>"`` — composed
spellings included (``"locator/sharded:voronoi"``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Protocol, cast, runtime_checkable

import numpy as np

from ..exceptions import PointLocationError
from ..geometry.point import Point
from ..runtime.registry import Registry, Selection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..model.network import WirelessNetwork

__all__ = [
    "Locator",
    "LocatorFactory",
    "LOCATORS",
    "register_locator",
    "available_locators",
    "get_locator",
    "build_locator",
    "active_locator",
    "use_locator",
]


@runtime_checkable
class Locator(Protocol):
    """The contract every network-level point locator implements.

    ``locate`` answers one query with the heard station's index (``-1`` when
    no station is heard); ``locate_batch`` answers an ``(m, 2)`` batch with an
    ``int64`` array using the same sentinel.  Batch answers agree with the
    scalar loop pointwise (away from measure-zero nearest-station ties, where
    tie-breaks may differ between scalar and vectorised front-ends).
    """

    name: str

    def locate(self, point: Point) -> int: ...

    def locate_batch(self, points: object) -> np.ndarray: ...


@runtime_checkable
class LocatorFactory(Protocol):
    """Anything with a ``build(network, **options) -> Locator`` entry point.

    Locator classes themselves satisfy this via a ``build`` classmethod; the
    registry also hands out bound factories for composed names such as
    ``"sharded:voronoi"``.
    """

    def build(self, network: "WirelessNetwork", **options: object) -> Locator: ...


class _ComposedFactory:
    """Factory for a composed name: binds the inner locator name as an option.

    ``get_locator("sharded:voronoi")`` returns one of these; its ``build``
    forwards to the outer factory with ``inner="voronoi"`` merged into the
    options (explicitly passed options win).
    """

    def __init__(self, outer: LocatorFactory, inner_name: str) -> None:
        self._outer = outer
        self._inner_name = inner_name

    def build(self, network: "WirelessNetwork", **options: object) -> Locator:
        options.setdefault("inner", self._inner_name)
        return self._outer.build(network, **options)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ComposedFactory({self._outer!r}, inner={self._inner_name!r})"


class _LocatorSelection(Selection[LocatorFactory]):
    """Result of :func:`use_locator`: effective immediately, optional context manager."""

    @property
    def factory(self) -> LocatorFactory:
        return self.value


#: The locator registry — a :class:`repro.runtime.Registry` instantiation
#: with the composed-name hook enabled: ``"sharded:<inner>"`` resolves to a
#: :class:`_ComposedFactory` without ever being registered.  The ContextVar
#: selection defaults to ``"voronoi"`` and ``LOCATORS.to_spec(name)``
#: renders a portable ``"locator/<name>"`` spec.
LOCATORS: Registry[LocatorFactory] = Registry(
    "locator",
    label="locator",
    default="voronoi",
    error=PointLocationError,
    compose=_ComposedFactory,
    compose_example="sharded:voronoi",
    unknown_hint=" (plus 'sharded:<inner>' compositions)",
    selection_type=_LocatorSelection,
)


def register_locator(name: str, factory: LocatorFactory) -> None:
    """Register ``factory`` under ``name`` (overwriting any previous one).

    Safe to call from any thread.  Composed names cannot be registered
    directly — the ``sharded:`` prefix is resolved dynamically so that every
    registered inner locator is immediately sweepable through it.
    """
    LOCATORS.register(name, factory)


def available_locators() -> Dict[str, LocatorFactory]:
    """Name -> factory mapping of everything registered (a snapshot copy).

    Sorted by name, so iteration order is deterministic across runs and
    interpreters regardless of registration order.  Only base names are
    listed; every name that supports inner composition (currently
    ``"sharded"``) additionally accepts the ``sharded:<inner>`` spelling
    through :func:`get_locator`.
    """
    return LOCATORS.snapshot()


def get_locator(name: "str | LocatorFactory | None" = None) -> LocatorFactory:
    """Resolve a locator factory: None -> the active one, a str -> by name.

    Composed names (``"sharded:voronoi"``, ``"sharded:theorem3"``, even
    ``"sharded:sharded:voronoi"``) resolve recursively: the prefix must be a
    registered factory that accepts an ``inner=`` build option, and the
    remainder must itself resolve.  Anything that is not ``None`` or a string
    is returned as-is (an explicitly constructed factory).
    """
    return LOCATORS.get(name)


def build_locator(
    network: "WirelessNetwork",
    name: "str | LocatorFactory | None" = None,
    **options: object,
) -> Locator:
    """Resolve and build in one call: the service-layer lookup hook.

    ``build_locator(network, "sharded:voronoi", shards=8)`` is exactly
    ``get_locator("sharded:voronoi").build(network, shards=8)``; ``None``
    builds the context's active selection (:func:`use_locator`).  The async
    query service (:mod:`repro.service`) and harnesses that take a locator
    spec as data go through this instead of pairing the two calls.
    """
    return get_locator(name).build(network, **options)


def active_locator() -> LocatorFactory:
    """The locator factory harnesses use when none is named explicitly.

    Resolved from the current context's selection, so each thread and async
    task sees its own :func:`use_locator` choices (falling back to
    ``"voronoi"`` — the exact ``O(n)``-per-query baseline — where none was
    made).
    """
    return LOCATORS.active()


def use_locator(name: "str | LocatorFactory") -> _LocatorSelection:
    """Make ``name`` the active locator selection in the current context.

    Takes effect immediately for the current thread / async task; as a
    context manager the previous selection is restored on exit, also when an
    exception escapes the block, and nested selections unwind in order.
    """
    return cast(_LocatorSelection, LOCATORS.use(name))
