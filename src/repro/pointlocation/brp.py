"""Boundary cover computation: the Boundary Reconstruction Process and an ablation.

Section 5.1 of the paper identifies the grid cells met by the zone boundary
``∂Q`` by walking along the boundary cell by cell (the *Boundary
Reconstruction Process*, BRP), using the segment test on grid edges to decide
where the boundary leaves the current 9-cell.  The T? ("suspect") cells are
the 9-cells of the traversed cells; since each traversal step consumes at
least ``gamma`` units of the perimeter, the number of T? cells is
``O(per(Q) / gamma)``.

This module implements two boundary-cover strategies over a common interface:

* :func:`reconstruct_boundary_cells` — the paper's segment-test-driven
  process.  Instead of the strictly clockwise walk of the paper we grow the
  cell set by breadth-first search from the starting cell, expanding only
  through cells whose edges the boundary crosses.  The set of cells crossed by
  a closed convex curve is 8-connected, so BFS visits exactly the same cells
  as the clockwise walk with the same ``O(per(Q)/gamma)`` segment-test budget,
  while being robust to the corner cases (boundary through a grid vertex)
  that make a strict walk fiddly.
* :func:`ray_sweep_boundary_cells` — an ablation baseline that exploits the
  star shape of reception zones (Lemma 3.1): boundary points are sampled
  along rays from the station at an angular resolution fine enough that
  consecutive samples fall in the same or adjacent cells.

Both return the set of *boundary* cells; the QDS layer pads them to 9-cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..exceptions import PointLocationError
from ..geometry.grid import Grid
from ..geometry.point import Point
from ..geometry.segment import Segment
from .segment_test import SegmentTest, SegmentTestResult

__all__ = [
    "BoundaryCover",
    "reconstruct_boundary_cells",
    "ray_sweep_boundary_cells",
]

CellIndex = Tuple[int, int]


@dataclass(frozen=True)
class BoundaryCover:
    """The outcome of a boundary-cover computation.

    Attributes:
        boundary_cells: grid cells met by the zone boundary.
        segment_tests: number of segment tests performed (0 for the ray sweep).
        boundary_probes: number of point-membership probes performed.
        method: ``"brp"`` or ``"ray_sweep"``.
    """

    boundary_cells: frozenset
    segment_tests: int
    boundary_probes: int
    method: str


def reconstruct_boundary_cells(
    grid: Grid,
    segment_test: SegmentTest,
    inside: Callable[[Point], bool],
    station: Point,
    delta_lower: float,
    Delta_upper: float,
    max_cells: Optional[int] = None,
) -> BoundaryCover:
    """The Boundary Reconstruction Process (segment-test driven).

    Args:
        grid: the gamma-spaced grid aligned at the station.
        segment_test: the segment test to use on grid edges.
        inside: zone membership predicate (used only to find the start cell).
        station: the zone's station (a grid vertex by construction).
        delta_lower: certified lower bound on the inscribed radius.
        Delta_upper: certified upper bound on the enclosing radius.
        max_cells: safety cap on the number of boundary cells (default:
            derived from the perimeter bound ``2*pi*Delta_upper / gamma``).

    Raises:
        PointLocationError: if a starting boundary cell cannot be found or the
            cell budget is exceeded (indicating an inconsistent zone).
    """
    gamma = grid.spacing
    if max_cells is None:
        # 9 cells per BRP step, at most ceil(2*pi*Delta/gamma) steps, plus slack.
        max_cells = max(64, int(40.0 * math.pi * Delta_upper / gamma))

    start_cell = _find_starting_cell(grid, inside, station, delta_lower, Delta_upper)

    edge_cache: Dict[Tuple[CellIndex, str], SegmentTestResult] = {}
    tests_performed = 0

    #: Offsets to the neighbour sharing each named edge.
    edge_neighbour = {
        "south": (0, -1),
        "east": (1, 0),
        "north": (0, 1),
        "west": (-1, 0),
    }

    def edge_results(index: CellIndex) -> Dict[str, SegmentTestResult]:
        """Segment-test results of the four edges of one cell (cached per edge)."""
        nonlocal tests_performed
        cell = grid.cell(*index)
        south, east, north, west = cell.edges()
        results: Dict[str, SegmentTestResult] = {}
        for name, edge in (("south", south), ("east", east), ("north", north), ("west", west)):
            key = _canonical_edge_key(index, name)
            result = edge_cache.get(key)
            if result is None:
                result = segment_test.test(edge)
                edge_cache[key] = result
                tests_performed += 1
            results[name] = result
        return results

    start_results = edge_results(start_cell)
    if not any(result.crosses for result in start_results.values()):
        raise PointLocationError(
            "BRP start cell does not meet the zone boundary; "
            "the radius bounds or the segment test are inconsistent"
        )

    # Walk along the boundary: from every cell the boundary passes through,
    # continue into the neighbours across its crossed edges.  The cells a
    # closed curve passes through are connected through crossed edges, so the
    # walk visits them all; a boundary running exactly through a grid vertex
    # (so that the curve hops to a diagonal neighbour without crossing the
    # interior of any shared edge) is handled by also expanding diagonally
    # whenever a cell corner lies (numerically) on the boundary.
    boundary: Set[CellIndex] = set()
    frontier: List[CellIndex] = [start_cell]
    queued: Set[CellIndex] = {start_cell}
    while frontier:
        current = frontier.pop()
        results = edge_results(current)
        crossed_edges = [name for name, result in results.items() if result.crosses]
        if not crossed_edges:
            continue
        boundary.add(current)
        if len(boundary) > max_cells:
            raise PointLocationError(
                f"BRP exceeded the cell budget of {max_cells}; "
                "the zone boundary appears to be unbounded"
            )
        next_cells: List[CellIndex] = []
        for name in crossed_edges:
            dc, dr = edge_neighbour[name]
            next_cells.append((current[0] + dc, current[1] + dr))
        if _corner_on_boundary(grid, current, inside):
            next_cells.extend(grid.neighbours(current, diagonal=True))
        for neighbour in next_cells:
            if neighbour not in queued:
                queued.add(neighbour)
                frontier.append(neighbour)

    return BoundaryCover(
        boundary_cells=frozenset(boundary),
        segment_tests=tests_performed,
        boundary_probes=0,
        method="brp",
    )


def _corner_on_boundary(grid: Grid, index: CellIndex, inside) -> bool:
    """Heuristic degeneracy detector: does a corner of the cell sit on the boundary?

    Only used to decide whether the boundary walk needs to expand diagonally;
    a false positive merely costs a few extra segment tests.
    """
    cell = grid.cell(*index)
    for corner in cell.corners():
        nudge = grid.spacing * 1e-9
        votes = [
            inside(Point(corner.x + dx, corner.y + dy))
            for dx in (-nudge, nudge)
            for dy in (-nudge, nudge)
        ]
        if any(votes) and not all(votes):
            return True
    return False


def ray_sweep_boundary_cells(
    grid: Grid,
    boundary_distance: Optional[Callable[[float], float]] = None,
    station: Optional[Point] = None,
    Delta_upper: Optional[float] = None,
    oversampling: float = 2.0,
    boundary_distance_batch: Optional[Callable[..., object]] = None,
) -> BoundaryCover:
    """Boundary cover by angular sweep (ablation baseline).

    Args:
        grid: the gamma-spaced grid aligned at the station.
        boundary_distance: function mapping a ray angle to the distance from
            the station to the zone boundary along that ray (star shape).
        station: the zone's station.
        Delta_upper: upper bound on the enclosing radius (sets the angular
            resolution).
        oversampling: how many samples per gamma of arc length (>= 1).
        boundary_distance_batch: vectorised alternative to
            ``boundary_distance``: maps an array of ray angles to the array
            of boundary distances in one call (e.g.
            :meth:`ReceptionZone.boundary_distances_along_rays`).  Preferred
            when available — the sweep typically probes thousands of rays and
            the batch path answers them through the engine kernels.

    The angular step is chosen so consecutive boundary samples are at most
    ``gamma / oversampling`` apart, hence fall in the same or an adjacent
    cell; together with the QDS 9-cell padding this covers every boundary
    cell.
    """
    if oversampling < 1.0:
        raise PointLocationError("oversampling must be at least 1")
    if boundary_distance is None and boundary_distance_batch is None:
        raise PointLocationError(
            "the ray sweep needs a boundary_distance or boundary_distance_batch"
        )
    if station is None:
        raise PointLocationError("the ray sweep needs the zone's station")
    if Delta_upper is None or Delta_upper <= 0.0:
        raise PointLocationError(
            "the ray sweep needs a positive Delta_upper (it sets the angular "
            "resolution)"
        )
    gamma = grid.spacing
    step = gamma / (oversampling * max(Delta_upper, gamma))
    count = max(16, int(math.ceil(2.0 * math.pi / step)))

    if boundary_distance_batch is not None:
        import numpy as np

        angles = 2.0 * math.pi * np.arange(count, dtype=float) / count
        if _accepts_tolerance(boundary_distance_batch):
            # Cell-resolution tolerance: a boundary sample within a small
            # fraction of gamma of the true boundary point lands in the same
            # or an adjacent cell, which the QDS 9-cell padding absorbs —
            # and it saves half the bisection iterations of the default
            # 1e-10 tolerance.  The bisection treats tolerance as relative
            # (scaled by max(1, high)); dividing by max(1, Delta_upper)
            # makes the stopping gap ~gamma/100 in absolute units at every
            # coordinate scale (high never exceeds ~Delta_upper for the
            # bounded zones this cover is built for).
            distances = boundary_distance_batch(
                angles, tolerance=gamma * 1e-2 / max(1.0, Delta_upper)
            )
        else:
            distances = boundary_distance_batch(angles)
        distances = np.asarray(distances, dtype=float)
        points = np.column_stack(
            (
                station.x + distances * np.cos(angles),
                station.y + distances * np.sin(angles),
            )
        )
        cols, rows = grid.cell_indices_of(points)
        cells = set(zip(cols.tolist(), rows.tolist()))
        return BoundaryCover(
            boundary_cells=frozenset(cells),
            segment_tests=0,
            boundary_probes=count,
            method="ray_sweep",
        )

    cells: Set[CellIndex] = set()
    probes = 0
    for k in range(count):
        angle = 2.0 * math.pi * k / count
        distance = boundary_distance(angle)
        probes += 1
        boundary_point = Point(
            station.x + distance * math.cos(angle),
            station.y + distance * math.sin(angle),
        )
        cells.add(grid.cell_index_of(boundary_point))

    return BoundaryCover(
        boundary_cells=frozenset(cells),
        segment_tests=0,
        boundary_probes=probes,
        method="ray_sweep",
    )


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _accepts_tolerance(callable_object) -> bool:
    """Does a boundary-distance-batch callable take a ``tolerance`` keyword?

    Decided from the signature (not by catching TypeError at the call, which
    would swallow TypeErrors raised *inside* the callable and silently rerun
    the whole sweep without the loosened tolerance).
    """
    import inspect

    try:
        parameters = inspect.signature(callable_object).parameters
    except (TypeError, ValueError):
        return False
    return "tolerance" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def _find_starting_cell(
    grid: Grid,
    inside: Callable[[Point], bool],
    station: Point,
    delta_lower: float,
    Delta_upper: float,
) -> CellIndex:
    """Find the cell north of the station whose west edge meets the boundary.

    The paper performs a binary search over grid vertices directly north of
    ``station`` between distance ``delta_tilde`` (known inside) and
    ``Delta_tilde`` (known outside), costing ``O(log(Delta/delta))``
    membership evaluations.
    """
    gamma = grid.spacing
    low = max(0, int(math.floor(delta_lower / gamma)) - 1)
    high = int(math.ceil(Delta_upper / gamma)) + 1

    def vertex_north(k: int) -> Point:
        return Point(station.x, station.y + k * gamma)

    # Ensure the bracket is valid: low inside (or the station itself), high outside.
    while low > 0 and not inside(vertex_north(low)):
        low -= 1
    while inside(vertex_north(high)):
        high += 1
        if high > 10 * (int(math.ceil(Delta_upper / gamma)) + 2):
            raise PointLocationError(
                "could not bracket the zone boundary north of the station; "
                "Delta_upper appears to be an underestimate"
            )

    while high - low > 1:
        middle = (low + high) // 2
        if inside(vertex_north(middle)):
            low = middle
        else:
            high = middle

    # The boundary crosses the vertical grid line between vertices low and
    # low + 1; the cell east of that edge (sharing it as its west edge) is the
    # starting cell.
    station_cell = grid.cell_index_of(station)
    return (station_cell[0], station_cell[1] + low)


def _canonical_edge_key(index: CellIndex, edge_name: str) -> Tuple[CellIndex, str]:
    """Canonical key so an edge shared by two cells is tested only once.

    Every edge is attributed to the cell having it as its *south* or *west*
    edge.
    """
    col, row = index
    if edge_name == "north":
        return ((col, row + 1), "south")
    if edge_name == "east":
        return ((col + 1, row), "west")
    return (index, edge_name)
