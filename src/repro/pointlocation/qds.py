"""The per-zone grid data structure QDS (Section 5.1 of the paper).

For one reception zone ``Q`` (with an internal point ``s``, a lower bound
``delta_tilde`` on its inscribed radius and an upper bound ``Delta_tilde`` on
its enclosing radius) and a performance parameter ``0 < eps < 1``, QDS
partitions the plane into three zones:

* ``Q+`` — cells certified to be inside ``Q``,
* ``Q-`` — cells certified to be outside ``Q``,
* ``Q?`` — an uncertainty band around the boundary whose total area is at most
  an ``eps``-fraction of ``area(Q)``.

The construction imposes a grid of spacing ``gamma = eps * delta_tilde^2 /
(18 * Delta_tilde)`` aligned at ``s``, covers the boundary with cells (the
Boundary Reconstruction Process or the ray-sweep ablation), takes the 9-cells
of the covered cells as ``Q?``, and classifies the remaining cells per grid
column: a non-suspect cell lying between suspect cells of its column is inside
(by convexity), anything else is outside.  Queries take constant time: locate
the cell, look up its column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..engine.batch import PointsLike, as_points_array
from ..exceptions import PointLocationError
from ..geometry.grid import Grid
from ..geometry.point import Point
from .brp import BoundaryCover, ray_sweep_boundary_cells, reconstruct_boundary_cells
from .segment_test import SamplingSegmentTest, SegmentTest, SturmSegmentTest

__all__ = [
    "ZoneLabel",
    "ZoneGridIndex",
    "QDSBuildReport",
    "INSIDE_CODE",
    "OUTSIDE_CODE",
    "UNCERTAIN_CODE",
]

CellIndex = Tuple[int, int]


class ZoneLabel(str, Enum):
    """Classification of a query point relative to one reception zone."""

    INSIDE = "inside"  # the point is certified to belong to the zone (Q+).
    OUTSIDE = "outside"  # the point is certified to be outside the zone (Q-).
    UNCERTAIN = "uncertain"  # the point falls in the uncertainty band (Q?).


#: Compact integer codes for :class:`ZoneLabel`, used by the batch fast paths
#: (:meth:`ZoneGridIndex.classify_codes_batch`) so per-point answers stay in
#: numpy arrays instead of enum lists.
OUTSIDE_CODE = 0
INSIDE_CODE = 1
UNCERTAIN_CODE = 2

_CODE_TO_LABEL = {
    OUTSIDE_CODE: ZoneLabel.OUTSIDE,
    INSIDE_CODE: ZoneLabel.INSIDE,
    UNCERTAIN_CODE: ZoneLabel.UNCERTAIN,
}


@dataclass(frozen=True)
class QDSBuildReport:
    """Cost and size accounting of one QDS construction."""

    gamma: float
    suspect_cells: int
    segment_tests: int
    boundary_probes: int
    method: str

    @property
    def uncertain_area(self) -> float:
        """Total area of the uncertainty band ``Q?``."""
        return self.suspect_cells * self.gamma * self.gamma


class ZoneGridIndex:
    """The QDS of one zone: grid classification plus constant-time queries.

    Args:
        inside: membership predicate of the zone ``Q``.
        station: an internal point of ``Q`` (the zone's station).
        delta_lower: certified lower bound on the inscribed radius.
        Delta_upper: certified upper bound on the enclosing radius.
        epsilon: performance parameter in ``(0, 1)``.
        segment_test: segment test used by the BRP (required unless
            ``cover_method='ray_sweep'``).
        boundary_distance: angle -> boundary distance function (required for
            ``cover_method='ray_sweep'`` unless the batch variant is given).
        boundary_distance_batch: vectorised angle-array -> distance-array
            function; when provided the ray sweep probes all rays through one
            lockstep engine bisection instead of per-ray scalar loops.
        cover_method: ``"brp"`` (the paper's process, default) or
            ``"ray_sweep"`` (the ablation baseline).
    """

    def __init__(
        self,
        inside: Callable[[Point], bool],
        station: Point,
        delta_lower: float,
        Delta_upper: float,
        epsilon: float,
        segment_test: Optional[SegmentTest] = None,
        boundary_distance: Optional[Callable[[float], float]] = None,
        cover_method: str = "brp",
        boundary_distance_batch: Optional[Callable[[object], object]] = None,
    ):
        if not 0.0 < epsilon < 1.0:
            raise PointLocationError(f"epsilon must be in (0, 1), got {epsilon}")
        if delta_lower <= 0.0 or Delta_upper < delta_lower:
            raise PointLocationError("invalid radius bounds for QDS construction")

        self.inside = inside
        self.station = station
        self.delta_lower = delta_lower
        self.Delta_upper = Delta_upper
        self.epsilon = epsilon

        # The paper's grid spacing gamma = eps * delta_tilde^2 / (18 * Delta_tilde),
        # additionally capped at delta_tilde / 2 so the station's own cell lies
        # fully inside the zone.
        gamma = epsilon * delta_lower * delta_lower / (18.0 * Delta_upper)
        gamma = min(gamma, delta_lower / 2.0)
        self.grid = Grid(origin=station, spacing=gamma)

        cover = self._cover_boundary(
            cover_method, segment_test, boundary_distance, boundary_distance_batch
        )
        self._suspect: FrozenSet[CellIndex] = self._pad_to_nine_cells(
            cover.boundary_cells
        )
        self._columns = self._index_columns(self._suspect)
        self.report = QDSBuildReport(
            gamma=gamma,
            suspect_cells=len(self._suspect),
            segment_tests=cover.segment_tests,
            boundary_probes=cover.boundary_probes,
            method=cover.method,
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _cover_boundary(
        self,
        cover_method: str,
        segment_test: Optional[SegmentTest],
        boundary_distance: Optional[Callable[[float], float]],
        boundary_distance_batch: Optional[Callable[[object], object]] = None,
    ) -> BoundaryCover:
        if cover_method == "brp":
            if segment_test is None:
                raise PointLocationError("the BRP cover requires a segment test")
            return reconstruct_boundary_cells(
                grid=self.grid,
                segment_test=segment_test,
                inside=self.inside,
                station=self.station,
                delta_lower=self.delta_lower,
                Delta_upper=self.Delta_upper,
            )
        if cover_method == "ray_sweep":
            if boundary_distance is None and boundary_distance_batch is None:
                raise PointLocationError(
                    "the ray-sweep cover requires a boundary_distance function"
                )
            return ray_sweep_boundary_cells(
                grid=self.grid,
                boundary_distance=boundary_distance,
                station=self.station,
                Delta_upper=self.Delta_upper,
                boundary_distance_batch=boundary_distance_batch,
            )
        raise PointLocationError(f"unknown cover method: {cover_method!r}")

    def _pad_to_nine_cells(self, cells: FrozenSet[CellIndex]) -> FrozenSet[CellIndex]:
        """The union of the 9-cells of every boundary cell (the T? cells)."""
        suspect = set()
        for index in cells:
            suspect.update(self.grid.nine_cell(index))
        return frozenset(suspect)

    @staticmethod
    def _index_columns(
        suspect: FrozenSet[CellIndex],
    ) -> Dict[int, Tuple[int, int, FrozenSet[int]]]:
        """Per-column view: ``col -> (min_row, max_row, rows)`` of suspect cells."""
        by_column: Dict[int, List[int]] = {}
        for col, row in suspect:
            by_column.setdefault(col, []).append(row)
        return {
            col: (min(rows), max(rows), frozenset(rows))
            for col, rows in by_column.items()
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def classify_cell(self, index: CellIndex) -> ZoneLabel:
        """Classify a grid cell as inside / outside / uncertain."""
        col, row = index
        column = self._columns.get(col)
        if column is None:
            return ZoneLabel.OUTSIDE
        min_row, max_row, rows = column
        if row in rows:
            return ZoneLabel.UNCERTAIN
        if min_row < row < max_row:
            # A non-suspect cell strictly between suspect cells of its column
            # is inside the (convex) zone: the boundary crosses the column at
            # most twice, and both crossings are covered by suspect cells.
            return ZoneLabel.INSIDE
        return ZoneLabel.OUTSIDE

    def classify(self, point: Point) -> ZoneLabel:
        """Classify a query point in constant time."""
        return self.classify_cell(self.grid.cell_index_of(point))

    def classify_batch(self, points: PointsLike) -> List[ZoneLabel]:
        """Classify a batch of query points.

        The point-to-cell conversion is vectorised (one pass over the
        coordinate array); the per-cell column lookups remain constant-time
        dictionary probes.  Answers agree with :meth:`classify` pointwise.
        """
        return [
            _CODE_TO_LABEL[code]
            for code in self.classify_codes_batch(points).tolist()
        ]

    def classify_codes_batch(self, points: PointsLike) -> np.ndarray:
        """Vectorised :meth:`classify_batch` returning compact integer codes.

        Returns an ``int8`` array with one of :data:`OUTSIDE_CODE`,
        :data:`INSIDE_CODE` or :data:`UNCERTAIN_CODE` per point — the
        representation the network-level locators build their uniform
        ``int64`` answers from.
        """
        pts = as_points_array(points)
        cols, rows = self.grid.cell_indices_of(pts)
        out = np.empty(len(pts), dtype=np.int8)
        lookup = self._columns.get
        for position, (col, row) in enumerate(zip(cols.tolist(), rows.tolist())):
            column = lookup(col)
            if column is None:
                out[position] = OUTSIDE_CODE
                continue
            min_row, max_row, cell_rows = column
            if row in cell_rows:
                out[position] = UNCERTAIN_CODE
            elif min_row < row < max_row:
                out[position] = INSIDE_CODE
            else:
                out[position] = OUTSIDE_CODE
        return out

    # ------------------------------------------------------------------
    # Size / quality accounting
    # ------------------------------------------------------------------
    @property
    def suspect_cell_count(self) -> int:
        """Number of T? cells (the structure's size is proportional to this)."""
        return len(self._suspect)

    @property
    def column_count(self) -> int:
        """Number of grid columns stored (the paper's vector representation)."""
        return len(self._columns)

    def uncertain_area(self) -> float:
        """Total area of the uncertainty band ``Q?``."""
        return self.report.uncertain_area

    def uncertain_area_bound(self) -> float:
        """The guaranteed ceiling ``eps * pi * delta_tilde^2 <= eps * area(Q)``."""
        return self.epsilon * math.pi * self.delta_lower * self.delta_lower

    def suspect_cells(self) -> FrozenSet[CellIndex]:
        """The T? cell indices (exposed for diagram rendering and tests)."""
        return self._suspect
