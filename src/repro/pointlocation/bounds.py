"""Radius bounds for reception zones (Theorem 4.1 and Section 5.2).

The point-location preprocessing needs a lower bound ``delta_tilde`` on the
inscribed radius and an upper bound ``Delta_tilde`` on the enclosing radius of
the target zone.  The paper provides two levels of bounds:

* **Explicit bounds (Theorem 4.1).**  With ``kappa`` the distance from the
  station to its nearest neighbour,

      delta >= kappa / (sqrt(beta * (n - 1 + N * kappa^2)) + 1)
      Delta <= kappa / (sqrt(beta * (1 + N * kappa^2)) - 1)

  giving a fatness ratio of ``O(sqrt(n))``.

* **Improved bounds (Section 5.2).**  Theorem 4.2 bounds the fatness by the
  constant ``c = (sqrt(beta)+1)/(sqrt(beta)-1)``, so once any boundary
  distance ``r`` is known (found by a binary-search style probe of the SINR
  function along a ray), both radii are ``Theta(r)``:
  ``delta >= r / c`` and ``Delta <= c * r``.  The probe costs ``O(n log n)``
  time and shrinks the ratio ``Delta_tilde / delta_tilde`` from
  ``O(sqrt(n))`` to ``O(1)``, which is what makes the grid of the
  point-location structure ``O(eps^-1)`` cells instead of ``O(n eps^-1)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import PointLocationError
from ..geometry.fatness import theoretical_fatness_bound
from ..geometry.point import Point
from ..geometry.polygon import Polygon
from ..geometry.segment import Line, Segment
from ..model.network import WirelessNetwork
from ..model.reception import ReceptionZone

__all__ = [
    "RadiusBounds",
    "explicit_radius_bounds",
    "improved_radius_bounds",
    "measured_radius_bounds",
    "radius_bounds",
    "station_reaches",
]


@dataclass(frozen=True, slots=True)
class RadiusBounds:
    """A certified sandwich ``delta_lower <= delta <= Delta <= Delta_upper``."""

    delta_lower: float
    Delta_upper: float

    def __post_init__(self) -> None:
        if self.delta_lower <= 0.0 or self.Delta_upper <= 0.0:
            raise PointLocationError("radius bounds must be positive")
        if self.delta_lower > self.Delta_upper:
            raise PointLocationError(
                "the lower bound on delta cannot exceed the upper bound on Delta"
            )

    @property
    def ratio(self) -> float:
        """The bound on the fatness ratio implied by the sandwich."""
        return self.Delta_upper / self.delta_lower


def explicit_radius_bounds(network: WirelessNetwork, index: int) -> RadiusBounds:
    """The explicit bounds of Theorem 4.1 for station ``index``.

    Requires a uniform power network with ``beta > 1`` whose station ``index``
    does not share its location with another station.
    """
    _require_uniform_nondegenerate(network, index)
    beta = network.beta
    noise = network.noise
    n = len(network)
    kappa = network.minimum_distance_from(index)

    delta_lower = kappa / (math.sqrt(beta * (n - 1 + noise * kappa * kappa)) + 1.0)
    Delta_upper = kappa / (math.sqrt(beta * (1.0 + noise * kappa * kappa)) - 1.0)
    return RadiusBounds(delta_lower=delta_lower, Delta_upper=Delta_upper)


def station_reaches(network: WirelessNetwork) -> np.ndarray:
    """Theorem 4.1 enclosing-radius upper bounds for *every* station at once.

    The vectorised twin of per-index :func:`explicit_radius_bounds`
    ``Delta_upper`` values: one ``(n,)`` float array, with ``0.0`` for
    degenerate stations (another station shares the location — their zone is
    the single point ``{s_i}``, so a zero reach is exact).  One distance
    matrix replaces ``n`` scalar nearest-neighbour scans, which is what lets
    the sharded locator recompute all routing boxes on every incremental
    update: the reach of an *untouched* station still shifts whenever its
    nearest neighbour moved, and ``Delta_upper`` is not monotone in that
    distance once noise is positive, so stale reaches are not conservative.

    Requires the Theorem 4.1 regime (uniform power, ``beta > 1``).
    """
    if not network.is_uniform_power():
        raise PointLocationError(
            "the radius bounds of Theorem 4.1 require a uniform power network"
        )
    if network.beta <= 1.0:
        raise PointLocationError(
            "the radius bounds of Theorem 4.1 require beta > 1"
        )
    coords = network.coords
    deltas = coords[:, None, :] - coords[None, :, :]
    squared = np.einsum("ijk,ijk->ij", deltas, deltas)
    np.fill_diagonal(squared, np.inf)
    kappa_squared = squared.min(axis=1)
    kappa = np.sqrt(kappa_squared)

    out = np.zeros(len(network), dtype=float)
    live = kappa > 0.0
    out[live] = kappa[live] / (
        np.sqrt(network.beta * (1.0 + network.noise * kappa_squared[live])) - 1.0
    )
    return out


def improved_radius_bounds(
    network: WirelessNetwork,
    index: int,
    probe_angle: float = math.pi / 2.0,
    tolerance: float = 1e-9,
) -> RadiusBounds:
    """The ``Theta(r)`` bounds of Section 5.2 for station ``index``.

    The boundary distance ``r`` along one ray (north of the station by
    default) is located by bisection between the Theorem 4.1 bounds, then
    widened by the Theorem 4.2 fatness constant ``c``:

        delta >= r / c    and    Delta <= c * r.

    The resulting ratio ``Delta_tilde / delta_tilde <= c^2`` is independent of
    the number of stations.
    """
    _require_uniform_nondegenerate(network, index)
    explicit = explicit_radius_bounds(network, index)
    zone = ReceptionZone(network=network, index=index)
    boundary_distance = zone.boundary_distance_along_ray(
        probe_angle, max_radius=explicit.Delta_upper * 1.0000001, tolerance=tolerance
    )
    # Clamp into the certified sandwich to protect against probe tolerance.
    boundary_distance = min(
        max(boundary_distance, explicit.delta_lower), explicit.Delta_upper
    )
    fatness_constant = theoretical_fatness_bound(network.beta)
    # Intersect with the explicit bounds: both are certified, so the tighter
    # of each side is still a valid sandwich (for small n the Theorem 4.1
    # bounds can be the sharper ones).
    return RadiusBounds(
        delta_lower=max(boundary_distance / fatness_constant, explicit.delta_lower),
        Delta_upper=min(boundary_distance * fatness_constant, explicit.Delta_upper),
    )


def measured_radius_bounds(
    network: WirelessNetwork,
    index: int,
    rays: int = 48,
    tolerance: float = 1e-9,
    safety_margin: float = 1e-3,
) -> RadiusBounds:
    """Geometry-measured bounds certified by convexity (an engineering refinement).

    The paper's bounds (Theorem 4.1 and the Section-5.2 improvement) are what
    the asymptotic analysis needs, but their constants are loose — the ratio
    ``Delta_tilde / delta_tilde`` they certify is the fatness *bound*
    ``c = (sqrt(beta)+1)/(sqrt(beta)-1)``, not the actual fatness of the zone.
    Since the grid spacing is quadratic in that ratio, tighter bounds shrink
    the structure (and its preprocessing time) dramatically without affecting
    any guarantee.

    This routine probes the boundary along ``rays`` equally spaced rays from
    the station and certifies:

    * ``delta_tilde``: the polygon through the probed boundary points is
      inscribed in the (convex) zone, so its centred inradius — the minimum
      distance from the station to a polygon edge — lower-bounds ``delta``;
    * ``Delta_tilde``: at each probed boundary point the gradient of the
      reception polynomial is an outward normal, so the corresponding tangent
      half-plane contains the zone (supporting hyperplane of a convex set);
      the maximum station-to-vertex distance of the intersection of those
      half-planes upper-bounds ``Delta``.

    Both sides are additionally intersected with the Theorem 4.1 bounds and
    padded by ``safety_margin`` against floating-point slop.  Requires the
    Theorem 1 regime (uniform power, ``beta > 1``, ``alpha = 2``).
    """
    _require_uniform_nondegenerate(network, index)
    if rays < 8:
        raise PointLocationError("measured_radius_bounds() needs at least 8 rays")
    explicit = explicit_radius_bounds(network, index)
    zone = ReceptionZone(network=network, index=index)
    station = zone.station_location
    polynomial = network.reception_polynomial(index)
    max_radius = explicit.Delta_upper * 1.0000001

    # One lockstep bisection over all rays through the engine's batch
    # reception mask instead of `rays` scalar probes of O(n) Python each.
    angles = [2.0 * math.pi * k / rays for k in range(rays)]
    distances = zone.boundary_distances_along_rays(
        angles, max_radius=max_radius, tolerance=tolerance
    )
    boundary_points = [
        Point(
            station.x + distance * math.cos(angle),
            station.y + distance * math.sin(angle),
        )
        for angle, distance in zip(angles, distances.tolist())
    ]

    # Lower bound on delta: centred inradius of the inscribed polygon.
    inscribed = Polygon(boundary_points)
    delta_lower = min(
        edge.distance_to_point(station) for edge in inscribed.edges()
    ) * (1.0 - safety_margin)

    # Upper bound on Delta: intersection of tangent half-planes.
    box_half_width = explicit.Delta_upper * 2.0
    outer: Polygon | None = Polygon.axis_aligned_box(
        Point(station.x - box_half_width, station.y - box_half_width),
        Point(station.x + box_half_width, station.y + box_half_width),
    )
    for point in boundary_points:
        normal = _outward_normal(polynomial, point, station)
        tangent = Line(normal.x, normal.y, -(normal.x * point.x + normal.y * point.y))
        keep_side = tangent.side(station)
        if keep_side == 0 or outer is None:
            continue
        outer = outer.clip_to_half_plane(tangent, keep_side=keep_side)
    if outer is None:
        Delta_upper = explicit.Delta_upper
    else:
        Delta_upper = max(station.distance_to(v) for v in outer.vertices) * (
            1.0 + safety_margin
        )

    delta_lower = max(min(delta_lower, explicit.Delta_upper), 0.0)
    if delta_lower <= 0.0:
        delta_lower = explicit.delta_lower
    delta_lower = max(delta_lower, explicit.delta_lower)
    Delta_upper = min(max(Delta_upper, delta_lower), explicit.Delta_upper)
    return RadiusBounds(delta_lower=delta_lower, Delta_upper=Delta_upper)


def radius_bounds(
    network: WirelessNetwork, index: int, method: str = "measured"
) -> RadiusBounds:
    """Dispatch on the bound method: ``"explicit"``, ``"improved"`` or ``"measured"``."""
    if method == "explicit":
        return explicit_radius_bounds(network, index)
    if method == "improved":
        return improved_radius_bounds(network, index)
    if method == "measured":
        return measured_radius_bounds(network, index)
    raise PointLocationError(f"unknown radius bound method: {method!r}")


def _outward_normal(polynomial, point: Point, station: Point) -> Point:
    """Unit outward normal of the zone boundary at ``point``.

    Uses a central finite difference of the reception polynomial; falls back
    to the radial direction from the station when the gradient is negligible
    (e.g. at a tangential double root).
    """
    scale = max(1.0, station.distance_to(point))
    step = 1e-7 * scale
    gx = (
        polynomial(point.x + step, point.y) - polynomial(point.x - step, point.y)
    ) / (2.0 * step)
    gy = (
        polynomial(point.x, point.y + step) - polynomial(point.x, point.y - step)
    ) / (2.0 * step)
    gradient = Point(gx, gy)
    norm = gradient.norm()
    if norm <= 1e-12:
        radial = point - station
        radial_norm = radial.norm()
        if radial_norm == 0.0:
            return Point(1.0, 0.0)
        return radial / radial_norm
    return gradient / norm


def _require_uniform_nondegenerate(network: WirelessNetwork, index: int) -> None:
    """Validate the preconditions shared by both bound computations."""
    if not network.is_uniform_power():
        raise PointLocationError(
            "the radius bounds of Theorem 4.1 require a uniform power network"
        )
    if network.beta <= 1.0:
        raise PointLocationError(
            "the radius bounds of Theorem 4.1 require beta > 1"
        )
    if network.location_is_shared(index):
        raise PointLocationError(
            "the reception zone is degenerate: another station shares the location"
        )
