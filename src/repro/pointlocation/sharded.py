"""Spatially sharded point location: per-shard locators, exact global answers.

The Theorem 3 structure (and every other locator) serves one flat station
set; at the scales the ROADMAP aims for the station set itself must be
partitioned.  The :class:`ShardedLocator` splits the stations spatially
(:mod:`repro.pointlocation.partition`), builds one *inner* locator per shard
over a :meth:`~repro.model.network.WirelessNetwork.subnetwork` view, and
answers query batches in three steps:

1. **Route.**  Each shard advertises a query box: the bounding box of its
   stations inflated by the shard's *reach* — the largest certified enclosing
   radius (Theorem 4.1) of any of its zones.  A station can only be heard
   inside its zone, and its zone fits inside its reach, so a query point can
   only be answered by shards whose query box contains it (possibly several,
   possibly none — then nothing is heard, certified).
2. **Propose.**  Each routed batch slice is answered by the shard's inner
   locator over the shard's *subnetwork*.  Dropping the other shards'
   stations only removes interference, so a shard-local "nothing heard" is
   already certified globally; a shard-local hit is merely a candidate.
3. **Verify & merge.**  All candidates are re-checked in one batched
   reception mask over the **full** station set through the active engine
   backend — shards narrow the candidate search, never the interference sum.
   Surviving candidates are merged back in input order (lowest station index
   first, matching the brute-force rule), so the final answers are exactly
   those of :class:`~repro.pointlocation.naive.BruteForceLocator`.

Because the answers are verified against the full network, they are exact
for *any* assignment of stations to shards — the partition affects only how
much candidate work the routing saves.  That partition-independence is what
makes **incremental updates** sound: :meth:`ShardedLocator.updated` applies
a :class:`~repro.model.delta.NetworkDelta` by rebuilding only the shards
whose station sets changed, re-placing arriving/relocated stations into the
nearest existing shard rather than re-partitioning, and recomputing every
routing box against the new network (an untouched station's certified reach
still shifts when its nearest neighbour moved, and the Theorem 4.1 bound is
not monotone in that distance under noise — stale boxes would not be
conservative).  Unchanged shards keep their already-built inner locator
object: its subnetwork view contains exactly the same stations, and inner
proposals never depend on the rest of the network.

The locator registers as ``"sharded"``; the composed spelling
``"sharded:<inner>"`` (e.g. ``"sharded:theorem3"``) selects the inner
locator by name through the registry.  Because both the inner proposals and
the verification run through the engine's batch entry points, per-shard
dispatch inherits whatever backend is active (numpy, numba, multiprocess).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..engine.batch import NO_RECEPTION, PointsLike, as_points_array, received_at
from ..exceptions import PointLocationError
from ..geometry.point import Point
from ..model.delta import NetworkDelta, diff_networks
from ..model.network import WirelessNetwork
from .bounds import station_reaches
from .registry import Locator, get_locator, register_locator

__all__ = ["ShardedLocator", "ShardInfo", "ShardUpdateReport"]


@dataclass(frozen=True)
class ShardInfo:
    """One shard of a :class:`ShardedLocator` (exposed for tests/benchmarks).

    Attributes:
        indices: global station indices of the shard (``int64``).
        query_box: ``(xmin, ymin, xmax, ymax)`` — the station bounding box
            inflated by the shard's certified reach; only points inside it
            can hear one of the shard's stations.
        locator: the inner locator over the shard's subnetwork, or None for
            single-station shards (whose lone station is proposed directly).
    """

    indices: np.ndarray
    query_box: Tuple[float, float, float, float]
    locator: Optional[Locator]

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class ShardUpdateReport:
    """What :meth:`ShardedLocator.updated` actually did (the rebuild ledger).

    Attached to the returned locator as ``last_update`` so property tests and
    benchmarks can assert that an incremental update rebuilt exactly the
    expected shard subset — positions refer to the *previous* locator's shard
    list.

    Attributes:
        full_rebuild: True when the update fell back to a from-scratch build
            (parameter change, or no shard survived to anchor placement);
            then ``rebuilt_positions`` covers the fresh locator's shards and
            the other tuples are empty.
        delta: the applied :class:`~repro.model.delta.NetworkDelta`.
        rebuilt_positions: shards whose station set changed — their inner
            locator was built anew over the new subnetwork.
        reused_positions: shards whose station set is unchanged — the same
            inner locator object serves on (only the routing box was
            recomputed).
        retired_positions: shards left empty by the delta and dropped.
    """

    full_rebuild: bool
    delta: NetworkDelta
    rebuilt_positions: Tuple[int, ...]
    reused_positions: Tuple[int, ...]
    retired_positions: Tuple[int, ...]

    @property
    def rebuilt(self) -> int:
        return len(self.rebuilt_positions)

    @property
    def reused(self) -> int:
        return len(self.reused_positions)

    def describe(self) -> str:
        """One-line summary for benchmark output."""
        if self.full_rebuild:
            return f"update[{self.delta.describe()}] full rebuild"
        return (
            f"update[{self.delta.describe()}] "
            f"{self.rebuilt} rebuilt / {self.reused} reused"
            + (f" / {len(self.retired_positions)} retired"
               if self.retired_positions else "")
        )


class ShardedLocator:
    """Exact point location over spatially partitioned stations.

    Args:
        network: a uniform power network with ``alpha = 2`` and ``beta > 1``
            (the regime in which Theorem 4.1 certifies the routing reach).
        inner: registry name (or factory) of the per-shard locator —
            ``"voronoi"`` (default), ``"brute-force"``, ``"theorem3"``, or
            even ``"sharded"`` again.
        shards: requested shard count (>= 1).
        partitioner: ``"kd"`` (default), ``"uniform"``, or a
            :class:`~repro.pointlocation.partition.SpatialPartitioner`.
        inner_options: extra build options forwarded to every inner locator
            (e.g. ``{"epsilon": 0.5}`` for ``inner="theorem3"``).
    """

    name = "sharded"

    def __init__(
        self,
        network: WirelessNetwork,
        inner: str = "voronoi",
        shards: int = 4,
        partitioner: object = "kd",
        inner_options: Optional[dict] = None,
    ):
        self._validate_network(network)
        if shards < 1:
            raise PointLocationError(f"shard count must be >= 1, got {shards}")

        from .partition import get_partitioner

        self.network = network
        self._inner_arg = inner
        self.inner_name = inner if isinstance(inner, str) else getattr(inner, "name", "custom")
        self._requested_shards = shards
        self._partitioner_spec = partitioner
        self.partitioner = get_partitioner(partitioner, shards)
        self._inner_factory = get_locator(inner)
        self.inner_options = dict(inner_options or {})
        self.last_update: Optional[ShardUpdateReport] = None

        coords = network.coords
        reaches = station_reaches(network)
        self._shards: List[ShardInfo] = []
        for group in self.partitioner.partition(coords):
            if len(group) == 0:
                continue
            group = np.asarray(group, dtype=np.int64)
            self._shards.append(
                ShardInfo(
                    indices=group,
                    query_box=self._query_box(coords, group, reaches),
                    locator=self._build_inner(network, group),
                )
            )

    @classmethod
    def build(cls, network: WirelessNetwork, **options) -> "ShardedLocator":
        """Registry factory: options forward to the constructor."""
        return cls(network, **options)

    @staticmethod
    def _validate_network(network: WirelessNetwork) -> None:
        if not network.is_uniform_power():
            raise PointLocationError(
                "sharded point location requires a uniform power network "
                "(Theorem 4.1 certifies the routing reach only there)"
            )
        if network.beta <= 1.0:
            raise PointLocationError("sharded point location requires beta > 1")
        if network.alpha != 2.0:
            raise PointLocationError("sharded point location requires alpha = 2")

    @staticmethod
    def _query_box(
        coords: np.ndarray, group: np.ndarray, reaches: np.ndarray
    ) -> Tuple[float, float, float, float]:
        """Station bounding box inflated by the shard's largest certified reach."""
        points = coords[group]
        reach = float(reaches[group].max())
        return (
            float(points[:, 0].min() - reach),
            float(points[:, 1].min() - reach),
            float(points[:, 0].max() + reach),
            float(points[:, 1].max() + reach),
        )

    def _build_inner(
        self, network: WirelessNetwork, group: np.ndarray
    ) -> Optional[Locator]:
        """The shard's inner locator — None for single-station shards.

        A lone station is too small for a subnetwork; it is proposed directly
        and settled by the full-network verification.
        """
        if len(group) == 1:
            return None
        return self._inner_factory.build(
            network.subnetwork(group), **self.inner_options
        )

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def updated(
        self,
        new_network: WirelessNetwork,
        delta: Optional[NetworkDelta] = None,
    ) -> "ShardedLocator":
        """A locator for ``new_network``, rebuilding only the touched shards.

        Args:
            new_network: the mutated network to serve.
            delta: the :class:`~repro.model.delta.NetworkDelta` from this
                locator's network to ``new_network`` — as returned by the
                ``repro.model.delta`` mutator helpers — or None to recover
                it via :func:`~repro.model.delta.diff_networks`.

        Surviving stations stay in their shard (indices remapped through the
        delta); arriving and relocated stations join the shard whose
        surviving-station bounding box is nearest to their new location
        (ties to the lowest shard position — see :meth:`nearest_shard`).
        Shards that neither lost nor gained a station keep their inner
        locator object; every routing box is recomputed against the new
        network.  Answers are bit-identical to a from-scratch build because
        verification always runs over the full new station set — the
        partition only shapes the candidate work.

        Falls back to a full rebuild (reported via ``last_update``) when the
        delta changes ``noise``/``beta``/``alpha`` or leaves no surviving
        shard to anchor placements.  The returned locator's ``last_update``
        is a :class:`ShardUpdateReport`; this locator is left untouched.
        """
        if delta is None:
            delta = diff_networks(self.network, new_network)
        if delta.old_count != len(self.network) or delta.new_count != len(new_network):
            raise PointLocationError(
                f"delta spans {delta.old_count} -> {delta.new_count} stations, "
                f"but the locator serves {len(self.network)} and the new "
                f"network has {len(new_network)}"
            )
        if delta.params_changed:
            return self._full_rebuild(new_network, delta)
        self._validate_network(new_network)

        new_coords = new_network.coords
        mapping = delta.surviving_map()
        groups: List[List[int]] = []
        boxes: List[Optional[Tuple[float, float, float, float]]] = []
        changed: List[bool] = []
        for shard in self._shards:
            mapped = mapping[shard.indices]
            kept = mapped[mapped >= 0]
            groups.append(kept.tolist())
            changed.append(kept.size != len(shard))
            if kept.size:
                points = new_coords[kept]
                boxes.append(
                    (
                        float(points[:, 0].min()),
                        float(points[:, 1].min()),
                        float(points[:, 0].max()),
                        float(points[:, 1].max()),
                    )
                )
            else:
                boxes.append(None)

        if all(box is None for box in boxes):
            # Nothing survived anywhere: no box can anchor placement, and a
            # fresh partition of the all-new station set is the right answer.
            return self._full_rebuild(new_network, delta)

        for new_index in delta.touched_new:
            x, y = float(new_coords[new_index, 0]), float(new_coords[new_index, 1])
            position = self.nearest_shard(boxes, x, y)
            groups[position].append(new_index)
            changed[position] = True
            # Later arrivals may cluster with this one rather than with the
            # survivors alone; grow the anchor box so placement sees them.
            box = boxes[position]
            boxes[position] = (
                min(box[0], x), min(box[1], y), max(box[2], x), max(box[3], y)
            ) if box is not None else (x, y, x, y)

        reaches = station_reaches(new_network)
        shards: List[ShardInfo] = []
        rebuilt: List[int] = []
        reused: List[int] = []
        retired: List[int] = []
        for position, (shard, members) in enumerate(zip(self._shards, groups)):
            if not members:
                retired.append(position)
                continue
            group = np.asarray(members, dtype=np.int64)
            query_box = self._query_box(new_coords, group, reaches)
            if changed[position]:
                inner = self._build_inner(new_network, group)
                rebuilt.append(position)
            else:
                inner = shard.locator
                reused.append(position)
            shards.append(
                ShardInfo(indices=group, query_box=query_box, locator=inner)
            )

        clone = self._clone_with_shards(new_network, shards)
        clone.last_update = ShardUpdateReport(
            full_rebuild=False,
            delta=delta,
            rebuilt_positions=tuple(rebuilt),
            reused_positions=tuple(reused),
            retired_positions=tuple(retired),
        )
        return clone

    @staticmethod
    def nearest_shard(
        boxes: List[Optional[Tuple[float, float, float, float]]], x: float, y: float
    ) -> int:
        """Placement rule for arriving stations: nearest box, ties lowest.

        ``boxes`` are per-shard station bounding boxes (None for empty
        shards).  Distance is the Euclidean distance from ``(x, y)`` to the
        box (zero inside).  Exposed so tests can predict which shards an
        update must rebuild.
        """
        best = -1
        best_squared = math.inf
        for position, box in enumerate(boxes):
            if box is None:
                continue
            xmin, ymin, xmax, ymax = box
            dx = max(xmin - x, 0.0, x - xmax)
            dy = max(ymin - y, 0.0, y - ymax)
            squared = dx * dx + dy * dy
            if squared < best_squared:
                best = position
                best_squared = squared
        if best < 0:
            raise PointLocationError("no non-empty shard to place the station in")
        return best

    def _full_rebuild(
        self, new_network: WirelessNetwork, delta: NetworkDelta
    ) -> "ShardedLocator":
        fresh = ShardedLocator(
            new_network,
            inner=self._inner_arg,
            shards=self._requested_shards,
            partitioner=self._partitioner_spec,
            inner_options=self.inner_options,
        )
        fresh.last_update = ShardUpdateReport(
            full_rebuild=True,
            delta=delta,
            rebuilt_positions=tuple(range(len(fresh._shards))),
            reused_positions=(),
            retired_positions=(),
        )
        return fresh

    def _clone_with_shards(
        self, network: WirelessNetwork, shards: List[ShardInfo]
    ) -> "ShardedLocator":
        clone = object.__new__(type(self))
        clone.network = network
        clone._inner_arg = self._inner_arg
        clone.inner_name = self.inner_name
        clone._requested_shards = self._requested_shards
        clone._partitioner_spec = self._partitioner_spec
        clone.partitioner = self.partitioner
        clone._inner_factory = self._inner_factory
        clone.inner_options = dict(self.inner_options)
        clone._shards = shards
        clone.last_update = None
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def locate(self, point: Point) -> int:
        """Index of the station heard at ``point``, or ``NO_RECEPTION`` (-1)."""
        return int(self.locate_batch(np.array([[point.x, point.y]]))[0])

    def locate_batch(self, points: PointsLike) -> np.ndarray:
        """Vectorised :meth:`locate`: one ``int64`` label per point.

        Routes the batch to shards by query box, gathers per-shard proposals
        from the inner locators, verifies every proposal against the full
        station set in one batched reception mask, and merges in input order.
        """
        pts = as_points_array(points)
        count = len(pts)
        out = np.full(count, NO_RECEPTION, dtype=np.int64)
        if count == 0:
            return out

        proposal_rows: List[np.ndarray] = []
        proposal_stations: List[np.ndarray] = []
        for shard in self._shards:
            xmin, ymin, xmax, ymax = shard.query_box
            routed = np.flatnonzero(
                (pts[:, 0] >= xmin)
                & (pts[:, 0] <= xmax)
                & (pts[:, 1] >= ymin)
                & (pts[:, 1] <= ymax)
            )
            if routed.size == 0:
                continue
            if shard.locator is None:
                local = np.zeros(routed.size, dtype=np.int64)
            else:
                local = shard.locator.locate_batch(pts[routed])
            proposed = local >= 0
            if not proposed.any():
                continue
            proposal_rows.append(routed[proposed])
            proposal_stations.append(shard.indices[local[proposed]])

        if not proposal_rows:
            return out
        rows = np.concatenate(proposal_rows)
        stations = np.concatenate(proposal_stations)

        # One full-network verification for all shards' candidates: the
        # interference sum always runs over every station, so sharding can
        # narrow the search without ever changing an answer.
        verified = received_at(self.network, stations, pts[rows])

        merged = np.full(count, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(merged, rows[verified], stations[verified])
        hit = merged != np.iinfo(np.int64).max
        out[hit] = merged[hit]
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> List[ShardInfo]:
        """The non-empty shards (indices, query boxes, inner locators)."""
        return list(self._shards)

    def shard_sizes(self) -> List[int]:
        """Station count per (non-empty) shard."""
        return [len(shard) for shard in self._shards]

    def describe(self) -> str:
        """One-line summary for benchmark and example output."""
        sizes = self.shard_sizes()
        return (
            f"sharded[{self.partitioner.name}, inner={self.inner_name}] "
            f"{len(sizes)} shards of {min(sizes)}..{max(sizes)} stations"
        )


register_locator("sharded", ShardedLocator)
