"""Spatially sharded point location: per-shard locators, exact global answers.

The Theorem 3 structure (and every other locator) serves one flat station
set; at the scales the ROADMAP aims for the station set itself must be
partitioned.  The :class:`ShardedLocator` splits the stations spatially
(:mod:`repro.pointlocation.partition`), builds one *inner* locator per shard
over a :meth:`~repro.model.network.WirelessNetwork.subnetwork` view, and
answers query batches in three steps:

1. **Route.**  Each shard advertises a query box: the bounding box of its
   stations inflated by the shard's *reach* — the largest certified enclosing
   radius (Theorem 4.1) of any of its zones.  A station can only be heard
   inside its zone, and its zone fits inside its reach, so a query point can
   only be answered by shards whose query box contains it (possibly several,
   possibly none — then nothing is heard, certified).
2. **Propose.**  Each routed batch slice is answered by the shard's inner
   locator over the shard's *subnetwork*.  Dropping the other shards'
   stations only removes interference, so a shard-local "nothing heard" is
   already certified globally; a shard-local hit is merely a candidate.
3. **Verify & merge.**  All candidates are re-checked in one batched
   reception mask over the **full** station set through the active engine
   backend — shards narrow the candidate search, never the interference sum.
   Surviving candidates are merged back in input order (lowest station index
   first, matching the brute-force rule), so the final answers are exactly
   those of :class:`~repro.pointlocation.naive.BruteForceLocator`.

The locator registers as ``"sharded"``; the composed spelling
``"sharded:<inner>"`` (e.g. ``"sharded:theorem3"``) selects the inner
locator by name through the registry.  Because both the inner proposals and
the verification run through the engine's batch entry points, per-shard
dispatch inherits whatever backend is active (numpy, numba, multiprocess).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..engine.batch import NO_RECEPTION, PointsLike, as_points_array, received_at
from ..exceptions import PointLocationError
from ..geometry.point import Point
from ..model.network import WirelessNetwork
from .bounds import explicit_radius_bounds
from .registry import Locator, get_locator, register_locator

__all__ = ["ShardedLocator", "ShardInfo"]


@dataclass(frozen=True)
class ShardInfo:
    """One shard of a :class:`ShardedLocator` (exposed for tests/benchmarks).

    Attributes:
        indices: global station indices of the shard (``int64``).
        query_box: ``(xmin, ymin, xmax, ymax)`` — the station bounding box
            inflated by the shard's certified reach; only points inside it
            can hear one of the shard's stations.
        locator: the inner locator over the shard's subnetwork, or None for
            single-station shards (whose lone station is proposed directly).
    """

    indices: np.ndarray
    query_box: Tuple[float, float, float, float]
    locator: Optional[Locator]

    def __len__(self) -> int:
        return len(self.indices)


class ShardedLocator:
    """Exact point location over spatially partitioned stations.

    Args:
        network: a uniform power network with ``alpha = 2`` and ``beta > 1``
            (the regime in which Theorem 4.1 certifies the routing reach).
        inner: registry name (or factory) of the per-shard locator —
            ``"voronoi"`` (default), ``"brute-force"``, ``"theorem3"``, or
            even ``"sharded"`` again.
        shards: requested shard count (>= 1).
        partitioner: ``"kd"`` (default), ``"uniform"``, or a
            :class:`~repro.pointlocation.partition.SpatialPartitioner`.
        inner_options: extra build options forwarded to every inner locator
            (e.g. ``{"epsilon": 0.5}`` for ``inner="theorem3"``).
    """

    name = "sharded"

    def __init__(
        self,
        network: WirelessNetwork,
        inner: str = "voronoi",
        shards: int = 4,
        partitioner: object = "kd",
        inner_options: Optional[dict] = None,
    ):
        if not network.is_uniform_power():
            raise PointLocationError(
                "sharded point location requires a uniform power network "
                "(Theorem 4.1 certifies the routing reach only there)"
            )
        if network.beta <= 1.0:
            raise PointLocationError("sharded point location requires beta > 1")
        if network.alpha != 2.0:
            raise PointLocationError("sharded point location requires alpha = 2")
        if shards < 1:
            raise PointLocationError(f"shard count must be >= 1, got {shards}")

        from .partition import get_partitioner

        self.network = network
        self.inner_name = inner if isinstance(inner, str) else getattr(inner, "name", "custom")
        self.partitioner = get_partitioner(partitioner, shards)
        inner_factory = get_locator(inner)
        options = dict(inner_options or {})

        coords = network.coords
        reaches = self._station_reaches()
        self._shards: List[ShardInfo] = []
        for group in self.partitioner.partition(coords):
            if len(group) == 0:
                continue
            group = np.asarray(group, dtype=np.int64)
            points = coords[group]
            reach = float(reaches[group].max())
            query_box = (
                float(points[:, 0].min() - reach),
                float(points[:, 1].min() - reach),
                float(points[:, 0].max() + reach),
                float(points[:, 1].max() + reach),
            )
            if len(group) == 1:
                # Too small for a subnetwork; the lone station is proposed
                # directly and settled by the full-network verification.
                inner_locator = None
            else:
                inner_locator = inner_factory.build(
                    network.subnetwork(group), **options
                )
            self._shards.append(
                ShardInfo(indices=group, query_box=query_box, locator=inner_locator)
            )

    @classmethod
    def build(cls, network: WirelessNetwork, **options) -> "ShardedLocator":
        """Registry factory: options forward to the constructor."""
        return cls(network, **options)

    def _station_reaches(self) -> np.ndarray:
        """Certified per-station hearing radius (Theorem 4.1 upper bound).

        A degenerate zone (another station shares the location) is the single
        point ``{s_i}``: reach 0 keeps the station inside its shard's closed
        query box, which is all the routing needs.
        """
        network = self.network
        out = np.zeros(len(network), dtype=float)
        for index in range(len(network)):
            if network.location_is_shared(index):
                continue
            out[index] = explicit_radius_bounds(network, index).Delta_upper
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def locate(self, point: Point) -> int:
        """Index of the station heard at ``point``, or ``NO_RECEPTION`` (-1)."""
        return int(self.locate_batch(np.array([[point.x, point.y]]))[0])

    def locate_batch(self, points: PointsLike) -> np.ndarray:
        """Vectorised :meth:`locate`: one ``int64`` label per point.

        Routes the batch to shards by query box, gathers per-shard proposals
        from the inner locators, verifies every proposal against the full
        station set in one batched reception mask, and merges in input order.
        """
        pts = as_points_array(points)
        count = len(pts)
        out = np.full(count, NO_RECEPTION, dtype=np.int64)
        if count == 0:
            return out

        proposal_rows: List[np.ndarray] = []
        proposal_stations: List[np.ndarray] = []
        for shard in self._shards:
            xmin, ymin, xmax, ymax = shard.query_box
            routed = np.flatnonzero(
                (pts[:, 0] >= xmin)
                & (pts[:, 0] <= xmax)
                & (pts[:, 1] >= ymin)
                & (pts[:, 1] <= ymax)
            )
            if routed.size == 0:
                continue
            if shard.locator is None:
                local = np.zeros(routed.size, dtype=np.int64)
            else:
                local = shard.locator.locate_batch(pts[routed])
            proposed = local >= 0
            if not proposed.any():
                continue
            proposal_rows.append(routed[proposed])
            proposal_stations.append(shard.indices[local[proposed]])

        if not proposal_rows:
            return out
        rows = np.concatenate(proposal_rows)
        stations = np.concatenate(proposal_stations)

        # One full-network verification for all shards' candidates: the
        # interference sum always runs over every station, so sharding can
        # narrow the search without ever changing an answer.
        verified = received_at(self.network, stations, pts[rows])

        merged = np.full(count, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(merged, rows[verified], stations[verified])
        hit = merged != np.iinfo(np.int64).max
        out[hit] = merged[hit]
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> List[ShardInfo]:
        """The non-empty shards (indices, query boxes, inner locators)."""
        return list(self._shards)

    def shard_sizes(self) -> List[int]:
        """Station count per (non-empty) shard."""
        return [len(shard) for shard in self._shards]

    def describe(self) -> str:
        """One-line summary for benchmark and example output."""
        sizes = self.shard_sizes()
        return (
            f"sharded[{self.partitioner.name}, inner={self.inner_name}] "
            f"{len(sizes)} shards of {min(sizes)}..{max(sizes)} stations"
        )


register_locator("sharded", ShardedLocator)
