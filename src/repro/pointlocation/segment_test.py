"""The segment test: does a zone boundary cross a given segment? (Section 5.1)

The Boundary Reconstruction Process repeatedly asks, for a grid edge
``sigma``, how many distinct points of the zone boundary ``∂Q`` lie on
``sigma``.  The paper implements this in ``O(m^2)`` time (``m`` the degree of
the defining polynomial) by applying Sturm's condition to the projection of
the polynomial on the segment, plus direct evaluations at the endpoints.

Two interchangeable implementations are provided:

* :class:`SturmSegmentTest` — the paper's algebraic test.  It restricts the
  reception polynomial to the segment and counts distinct real roots of the
  univariate restriction in ``[0, 1]`` with a Sturm sequence.
* :class:`SamplingSegmentTest` — a numerical fallback/ablation baseline that
  detects boundary crossings by sign changes of the SINR margin along a fixed
  number of samples.  It can miss crossings that enter and leave between two
  samples (i.e. it has one-sided error), which is exactly the robustness
  trade-off the ablation benchmark quantifies.

Both report a :class:`SegmentTestResult`; the BRP only needs the boolean
"crosses" bit, but the count is exposed because Lemma 2.1 (convex zones meet
lines at most twice) is itself an invariant worth testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from ..algebra.reception import ReceptionPolynomial
from ..algebra.sturm import SturmSequence
from ..exceptions import PointLocationError
from ..geometry.point import Point
from ..geometry.segment import Segment

__all__ = [
    "SegmentTestResult",
    "SegmentTest",
    "SturmSegmentTest",
    "SamplingSegmentTest",
]


@dataclass(frozen=True, slots=True)
class SegmentTestResult:
    """Outcome of a segment test.

    Attributes:
        crossings: number of distinct boundary points found on the segment
            (for the sampling test: a lower bound).
        start_inside: whether the segment's start point lies in the zone.
        end_inside: whether the segment's end point lies in the zone.
    """

    crossings: int
    start_inside: bool
    end_inside: bool

    @property
    def crosses(self) -> bool:
        """True if the boundary meets the segment at least once."""
        return self.crossings > 0 or (self.start_inside != self.end_inside)


class SegmentTest(Protocol):
    """Protocol shared by the Sturm and sampling segment tests."""

    def test(self, segment: Segment) -> SegmentTestResult:
        """Run the test on one segment."""
        ...


class SturmSegmentTest:
    """The paper's algebraic segment test, driven by Sturm's condition.

    Args:
        polynomial: the reception polynomial ``H`` of the zone under study.
    """

    def __init__(self, polynomial: ReceptionPolynomial):
        self.polynomial = polynomial
        self.invocations = 0

    def test(self, segment: Segment) -> SegmentTestResult:
        """Count distinct boundary points on ``segment`` via Sturm's condition."""
        self.invocations += 1
        restriction = self.polynomial.restrict_to_segment(segment.start, segment.end)
        start_inside = restriction(0.0) <= 0.0
        end_inside = restriction(1.0) <= 0.0
        if restriction.is_zero(tolerance=1e-15):
            # The segment lies entirely on the boundary: count it as crossed.
            return SegmentTestResult(crossings=1, start_inside=True, end_inside=True)
        sequence = SturmSequence.of(restriction)
        crossings = sequence.count_roots_in_interval(0.0, 1.0)
        scale = max(restriction.l2_norm(), 1.0)
        if abs(restriction(0.0)) <= 1e-12 * scale:
            crossings += 1
        return SegmentTestResult(
            crossings=crossings, start_inside=start_inside, end_inside=end_inside
        )


class SamplingSegmentTest:
    """A sampling-based segment test (ablation baseline).

    Args:
        inside: the zone membership predicate.
        samples: number of evenly spaced evaluation points per segment.
    """

    def __init__(self, inside: Callable[[Point], bool], samples: int = 16):
        if samples < 2:
            raise PointLocationError("SamplingSegmentTest needs at least two samples")
        self.inside = inside
        self.samples = samples
        self.invocations = 0

    def test(self, segment: Segment) -> SegmentTestResult:
        """Count membership flips along the sampled segment."""
        self.invocations += 1
        memberships = [
            self.inside(point) for point in segment.sample(self.samples)
        ]
        crossings = sum(
            1
            for previous, current in zip(memberships, memberships[1:])
            if previous != current
        )
        return SegmentTestResult(
            crossings=crossings,
            start_inside=memberships[0],
            end_inside=memberships[-1],
        )
