"""Spatial partitioners for the sharded point-location subsystem.

A partitioner splits a station coordinate array into disjoint index groups
("shards") by position.  Two strategies are provided:

* :class:`UniformTilePartitioner` — a fixed ``tiles_x x tiles_y`` grid over
  the stations' bounding box.  Simple and cache-friendly, but skewed station
  distributions (clusters, outliers) produce unbalanced and possibly *empty*
  tiles — which the sharded locator must, and does, tolerate.
* :class:`KDMedianPartitioner` — recursive median bisection of the station
  set along the axis of larger spread (the classic k-d construction),
  producing any requested number of shards with sizes balanced to within
  one station regardless of the spatial distribution.

Both return plain ``int64`` index arrays; group order is deterministic.
Empty groups are preserved (not dropped) so callers can account for them
explicitly — the degenerate configurations (one shard, more tiles than
stations) are exercised by the property tests.
"""

from __future__ import annotations

import math
from typing import List, Protocol, runtime_checkable

import numpy as np

from ..exceptions import PointLocationError

__all__ = [
    "SpatialPartitioner",
    "UniformTilePartitioner",
    "KDMedianPartitioner",
    "get_partitioner",
]


@runtime_checkable
class SpatialPartitioner(Protocol):
    """The contract of a station partitioner.

    ``partition`` maps an ``(n, 2)`` coordinate array to a list of disjoint
    ``int64`` index arrays covering ``0..n-1`` (some possibly empty).
    """

    name: str

    def partition(self, coords: np.ndarray) -> List[np.ndarray]: ...


def _as_coords(coords) -> np.ndarray:
    array = np.asarray(coords, dtype=float)
    if array.ndim != 2 or array.shape[1] != 2:
        raise PointLocationError(
            f"expected station coordinates of shape (n, 2), got {array.shape}"
        )
    return array


class UniformTilePartitioner:
    """Partition by a uniform ``tiles_x x tiles_y`` grid over the station bbox.

    Args:
        tiles_x: number of tile columns (>= 1).
        tiles_y: number of tile rows; defaults to ``tiles_x``.

    Stations on interior tile boundaries go to the higher tile; the right and
    top border stations are clipped into the last tile, so every station is
    assigned.  Tiles are emitted row-major (south-west first) and may be
    empty under skewed distributions.
    """

    def __init__(self, tiles_x: int, tiles_y: int = None):
        if tiles_y is None:
            tiles_y = tiles_x
        if tiles_x < 1 or tiles_y < 1:
            raise PointLocationError("tile counts must be at least 1")
        self.tiles_x = int(tiles_x)
        self.tiles_y = int(tiles_y)
        self.name = f"uniform({self.tiles_x}x{self.tiles_y})"

    @classmethod
    def for_shard_count(cls, shards: int) -> "UniformTilePartitioner":
        """The most-square tile grid with at least ``shards`` tiles."""
        if shards < 1:
            raise PointLocationError("shard count must be at least 1")
        tiles_x = max(1, int(math.floor(math.sqrt(shards))))
        tiles_y = int(math.ceil(shards / tiles_x))
        return cls(tiles_x, tiles_y)

    def partition(self, coords) -> List[np.ndarray]:
        array = _as_coords(coords)
        count = len(array)
        if count == 0:
            return [
                np.empty(0, dtype=np.int64)
                for _ in range(self.tiles_x * self.tiles_y)
            ]
        mins = array.min(axis=0)
        spans = array.max(axis=0) - mins
        spans[spans == 0.0] = 1.0  # all stations colinear along an axis
        cols = np.clip(
            ((array[:, 0] - mins[0]) / spans[0] * self.tiles_x).astype(np.int64),
            0,
            self.tiles_x - 1,
        )
        rows = np.clip(
            ((array[:, 1] - mins[1]) / spans[1] * self.tiles_y).astype(np.int64),
            0,
            self.tiles_y - 1,
        )
        tile_of = rows * self.tiles_x + cols
        return [
            np.flatnonzero(tile_of == tile).astype(np.int64)
            for tile in range(self.tiles_x * self.tiles_y)
        ]


class KDMedianPartitioner:
    """Partition by recursive median bisection along the wider-spread axis.

    Args:
        shards: number of groups to produce (>= 1, need not be a power of
            two — uneven splits distribute stations proportionally).

    Always returns exactly ``shards`` groups with sizes balanced to within
    one station; when there are fewer stations than shards the tail groups
    are empty.
    """

    def __init__(self, shards: int):
        if shards < 1:
            raise PointLocationError("shard count must be at least 1")
        self.shards = int(shards)
        self.name = f"kd({self.shards})"

    def partition(self, coords) -> List[np.ndarray]:
        array = _as_coords(coords)
        all_indices = np.arange(len(array), dtype=np.int64)
        return self._split(array, all_indices, self.shards)

    def _split(
        self, coords: np.ndarray, indices: np.ndarray, shards: int
    ) -> List[np.ndarray]:
        if shards == 1:
            return [indices]
        if len(indices) == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(shards)]
        left_shards = shards // 2
        right_shards = shards - left_shards
        points = coords[indices]
        spreads = points.max(axis=0) - points.min(axis=0)
        axis = 0 if spreads[0] >= spreads[1] else 1
        # Stable sort keeps the split deterministic under coordinate ties.
        order = np.argsort(points[:, axis], kind="stable")
        cut = round(len(indices) * left_shards / shards)
        left = indices[order[:cut]]
        right = indices[order[cut:]]
        return self._split(coords, left, left_shards) + self._split(
            coords, right, right_shards
        )


def get_partitioner(spec, shards: int) -> SpatialPartitioner:
    """Resolve a partitioner: by name (``"kd"`` / ``"uniform"``) or as-is.

    ``shards`` sizes the named strategies; an explicitly constructed
    partitioner object is returned unchanged (its own shard count wins).
    """
    if isinstance(spec, str):
        if spec == "kd":
            return KDMedianPartitioner(shards)
        if spec == "uniform":
            return UniformTilePartitioner.for_shard_count(shards)
        raise PointLocationError(
            f"unknown partitioner {spec!r}; available: ['kd', 'uniform']"
        )
    if isinstance(spec, SpatialPartitioner):
        return spec
    raise PointLocationError(
        f"a partitioner must be 'kd', 'uniform' or provide partition(); got {spec!r}"
    )
