"""Naive point-location baselines (the comparison points of Section 1.3).

The paper motivates its data structure against two obvious alternatives:

* the ``O(n^2)``-per-query brute force that computes the SINR of *every*
  station at the query point (each SINR evaluation is itself ``O(n)``);
* the ``O(n)``-per-query method that exploits Observation 2.2: only the
  station whose Voronoi cell contains the query point can possibly be heard,
  so one nearest-station search plus a single SINR evaluation suffices.

Both baselines answer *exactly*, unlike the approximate grid structure, and
are used by the Theorem 3 benchmark to expose the query-time trade-off.

Both implement the unified :class:`~repro.pointlocation.registry.Locator`
protocol: ``locate`` returns the heard station's index (``NO_RECEPTION`` =
-1 where nothing is heard), ``locate_batch`` answers an ``(m, 2)`` array in
one vectorised pass through the active engine backend and returns an
``int64`` label array agreeing with the scalar loop pointwise.  They are
registered as ``"brute-force"`` and ``"voronoi"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.backend import get_backend
from ..engine.batch import NO_RECEPTION, PointsLike, as_points_array, received_at
from ..engine import kernels
from ..geometry.kdtree import KDTree
from ..geometry.point import Point
from ..model.network import WirelessNetwork
from .registry import register_locator

__all__ = ["BruteForceLocator", "VoronoiCandidateLocator"]


@dataclass
class BruteForceLocator:
    """Exact point location by evaluating every station's SINR (``O(n^2)`` per query)."""

    network: WirelessNetwork

    name = "brute-force"

    @classmethod
    def build(cls, network: WirelessNetwork, **options) -> "BruteForceLocator":
        """Registry factory (takes no options)."""
        if options:
            raise TypeError(f"unexpected options: {sorted(options)}")
        return cls(network)

    def locate(self, point: Point) -> int:
        """Index of the station heard at ``point``, or ``NO_RECEPTION`` (-1)."""
        for index in range(len(self.network)):
            if self.network.is_received(index, point):
                return index
        return NO_RECEPTION

    def locate_batch(self, points: PointsLike) -> np.ndarray:
        """Vectorised :meth:`locate`: one ``int64`` label per point.

        Matches the scalar loop exactly, including its first-received-index
        rule (which matters only in the ``beta < 1`` regime where several
        stations may qualify).  Runs through the active engine backend.
        """
        pts = as_points_array(points)
        network = self.network
        mask = get_backend().received_mask_matrix(
            network.coords,
            network.powers_array(),
            pts,
            network.noise,
            network.beta,
            network.alpha,
        )
        any_received = mask.any(axis=0)
        first = np.argmax(mask, axis=0)
        return np.where(any_received, first, NO_RECEPTION).astype(np.int64)

    def query_cost(self) -> int:
        """Number of energy evaluations a single query performs."""
        n = len(self.network)
        return n * n


class VoronoiCandidateLocator:
    """Exact point location via the unique Voronoi candidate (``O(n)`` per query).

    Observation 2.2: in a uniform power network only the nearest station can
    be heard at a point, so the query reduces to one nearest-station lookup
    (``O(log n)`` with the k-d tree) plus one SINR evaluation (``O(n)``).
    """

    name = "voronoi"

    def __init__(self, network: WirelessNetwork):
        self.network = network
        self._tree = KDTree(network.locations())

    @classmethod
    def build(cls, network: WirelessNetwork, **options) -> "VoronoiCandidateLocator":
        """Registry factory (takes no options)."""
        if options:
            raise TypeError(f"unexpected options: {sorted(options)}")
        return cls(network)

    def locate(self, point: Point) -> int:
        """Index of the station heard at ``point``, or ``NO_RECEPTION`` (-1)."""
        candidate = self._tree.nearest_index(point)
        if self.network.is_received(candidate, point):
            return candidate
        return NO_RECEPTION

    def locate_batch(self, points: PointsLike) -> np.ndarray:
        """Vectorised :meth:`locate`: one ``int64`` label per point.

        The nearest candidate is found by a vectorised distance argmin
        (lowest index on exact ties) instead of the k-d tree; away from
        measure-zero equidistance ties the answers agree with the scalar
        method pointwise.  The reception check runs through the active
        engine backend.
        """
        pts = as_points_array(points)
        network = self.network
        squared = kernels.pairwise_squared_distances(network.coords, pts)
        candidates = np.argmin(squared, axis=0)
        heard = received_at(network, candidates, pts)
        return np.where(heard, candidates, NO_RECEPTION).astype(np.int64)

    def query_cost(self) -> int:
        """Number of energy evaluations a single query performs."""
        return len(self.network)


register_locator("brute-force", BruteForceLocator)
register_locator("voronoi", VoronoiCandidateLocator)
