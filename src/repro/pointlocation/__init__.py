"""Approximate point location in SINR diagrams (Theorem 3 of the paper).

The package contains every layer of the construction: the radius bounds of
Theorem 4.1 and their Section-5.2 improvement, the Sturm-based segment test,
the Boundary Reconstruction Process (plus a ray-sweep ablation), the
per-station grid structure QDS, the combined nearest-station-fronted
structure DS, and the naive exact baselines it is benchmarked against.
"""

from .bounds import (
    RadiusBounds,
    explicit_radius_bounds,
    improved_radius_bounds,
    measured_radius_bounds,
    radius_bounds,
)
from .brp import BoundaryCover, ray_sweep_boundary_cells, reconstruct_boundary_cells
from .ds import PointLocationAnswer, PointLocationStructure, PreprocessingReport
from .naive import BruteForceLocator, VoronoiCandidateLocator
from .qds import QDSBuildReport, ZoneGridIndex, ZoneLabel
from .segment_test import (
    SamplingSegmentTest,
    SegmentTest,
    SegmentTestResult,
    SturmSegmentTest,
)

__all__ = [
    "BoundaryCover",
    "BruteForceLocator",
    "PointLocationAnswer",
    "PointLocationStructure",
    "PreprocessingReport",
    "QDSBuildReport",
    "RadiusBounds",
    "SamplingSegmentTest",
    "SegmentTest",
    "SegmentTestResult",
    "SturmSegmentTest",
    "VoronoiCandidateLocator",
    "ZoneGridIndex",
    "ZoneLabel",
    "explicit_radius_bounds",
    "improved_radius_bounds",
    "measured_radius_bounds",
    "radius_bounds",
    "ray_sweep_boundary_cells",
    "reconstruct_boundary_cells",
]
