"""Point location in SINR diagrams (Theorem 3 of the paper) — and beyond it.

The package contains every layer of the construction: the radius bounds of
Theorem 4.1 and their Section-5.2 improvement, the Sturm-based segment test,
the Boundary Reconstruction Process (plus a ray-sweep ablation), the
per-station grid structure QDS, the combined nearest-station-fronted
structure DS, the naive exact baselines it is benchmarked against, and a
sharding subsystem that partitions the station set spatially for scale.

Every network-level locator implements the unified
:class:`~repro.pointlocation.registry.Locator` protocol — ``locate(point)``
-> station index or ``-1``; ``locate_batch(points)`` -> ``int64`` array with
the same sentinel — and is reachable by name through the registry
(:func:`get_locator` / :func:`available_locators` / :func:`use_locator`).
The locator matrix:

===================  =========================================================
``"brute-force"``    :class:`BruteForceLocator` — every station's SINR per
                     query (``O(n^2)``); the ground truth all equivalence
                     tests compare against.
``"voronoi"``        :class:`VoronoiCandidateLocator` — Observation 2.2's
                     nearest-station candidate plus one SINR check
                     (``O(n)`` per query); exact, no preprocessing.
``"theorem3"``       :class:`PointLocationStructure` — the paper's DS:
                     ``O(n/eps)`` preprocessing, ``O(log n)`` certified
                     queries; the thin uncertain band is resolved exactly on
                     demand, so the protocol answers are exact too.  The
                     three-way INSIDE / OUTSIDE / UNCERTAIN view stays
                     available via ``locate_answer`` / ``locate_answers``.
``"sharded"``        :class:`ShardedLocator` — stations partitioned
                     spatially (``"kd"`` median bisection or ``"uniform"``
                     tiles), one inner locator per shard over a
                     ``subnetwork`` view, query batches routed by certified
                     bounding boxes and candidates re-verified against the
                     full station set, so answers are bit-identical to
                     brute force.  Compose by name: ``"sharded:voronoi"``,
                     ``"sharded:theorem3"``, ...
===================  =========================================================

:class:`ZoneGridIndex` (the per-zone QDS) sits one level below the network
locators: it classifies points against a *single* zone and is the component
the DS builds on; its batch surface (``classify_codes_batch``) feeds the
uniform ``int64`` answers of the structures above.
"""

from .bounds import (
    RadiusBounds,
    explicit_radius_bounds,
    improved_radius_bounds,
    measured_radius_bounds,
    radius_bounds,
    station_reaches,
)
from .brp import BoundaryCover, ray_sweep_boundary_cells, reconstruct_boundary_cells
from .ds import PointLocationAnswer, PointLocationStructure, PreprocessingReport
from .naive import BruteForceLocator, VoronoiCandidateLocator
from .partition import (
    KDMedianPartitioner,
    SpatialPartitioner,
    UniformTilePartitioner,
    get_partitioner,
)
from .qds import QDSBuildReport, ZoneGridIndex, ZoneLabel
from .registry import (
    Locator,
    LocatorFactory,
    active_locator,
    available_locators,
    build_locator,
    get_locator,
    register_locator,
    use_locator,
)
from .segment_test import (
    SamplingSegmentTest,
    SegmentTest,
    SegmentTestResult,
    SturmSegmentTest,
)
from .sharded import ShardedLocator, ShardInfo, ShardUpdateReport

__all__ = [
    "BoundaryCover",
    "BruteForceLocator",
    "KDMedianPartitioner",
    "Locator",
    "LocatorFactory",
    "PointLocationAnswer",
    "PointLocationStructure",
    "PreprocessingReport",
    "QDSBuildReport",
    "RadiusBounds",
    "SamplingSegmentTest",
    "SegmentTest",
    "SegmentTestResult",
    "ShardInfo",
    "ShardUpdateReport",
    "ShardedLocator",
    "SpatialPartitioner",
    "SturmSegmentTest",
    "UniformTilePartitioner",
    "VoronoiCandidateLocator",
    "ZoneGridIndex",
    "ZoneLabel",
    "active_locator",
    "available_locators",
    "build_locator",
    "explicit_radius_bounds",
    "get_locator",
    "get_partitioner",
    "improved_radius_bounds",
    "measured_radius_bounds",
    "radius_bounds",
    "ray_sweep_boundary_cells",
    "reconstruct_boundary_cells",
    "register_locator",
    "station_reaches",
    "use_locator",
]
