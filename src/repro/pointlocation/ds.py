"""The combined point-location structure DS of Theorem 3.

The structure front-ends the per-station grid structures (QDS) with a
nearest-station search:

* preprocessing builds, for every station ``s_i`` whose zone is not
  degenerate, the improved radius bounds of Section 5.2 and a
  :class:`~repro.pointlocation.qds.ZoneGridIndex` of size ``O(eps^-1)``;
  total size ``O(n * eps^-1)``;
* a query locates the nearest station (``O(log n)`` via a k-d tree, standing
  in for the paper's Voronoi diagram) and consults only that station's QDS
  (constant time), returning which of ``H_i^+``, ``H_i^?`` or ``H^-`` the
  point belongs to.

The classification (:meth:`PointLocationStructure.locate_answer`) is
*one-sided exact*: ``H_i^+`` is certified reception, ``H^-`` is certified
non-reception, and only the thin ``H_i^?`` bands (whose total area is at most
an ``eps``-fraction of the corresponding zone) remain undecided.

As a registered :class:`~repro.pointlocation.registry.Locator` (name
``"theorem3"``) the structure is *fully* exact: ``locate`` / ``locate_batch``
return the uniform ``int64`` station-index answer by resolving the few
uncertain-band points with one exact SINR evaluation each (certify first,
verify the thin remainder), so its answers coincide with
:class:`~repro.pointlocation.naive.BruteForceLocator` on the paper's
``beta > 1`` regime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine import kernels
from ..engine.batch import NO_RECEPTION, PointsLike, as_points_array, received_at
from ..exceptions import PointLocationError
from ..geometry.kdtree import KDTree
from ..geometry.point import Point
from ..model.network import WirelessNetwork
from ..model.reception import ReceptionZone
from .bounds import RadiusBounds, radius_bounds
from .qds import (
    INSIDE_CODE,
    UNCERTAIN_CODE,
    QDSBuildReport,
    ZoneGridIndex,
    ZoneLabel,
)
from .registry import register_locator
from .segment_test import SamplingSegmentTest, SturmSegmentTest

__all__ = ["PointLocationAnswer", "PointLocationStructure", "PreprocessingReport"]


@dataclass(frozen=True, slots=True)
class PointLocationAnswer:
    """The answer to one classified point-location query.

    Attributes:
        station: index of the only station that can possibly be heard at the
            query point (its Voronoi owner), or None if the network is empty.
        label: INSIDE (the point is in ``H_station^+``), OUTSIDE (the point is
            in ``H^-``), or UNCERTAIN (the point is in ``H_station^?``).
    """

    station: Optional[int]
    label: ZoneLabel

    @property
    def is_certified_reception(self) -> bool:
        return self.label is ZoneLabel.INSIDE

    @property
    def is_certified_no_reception(self) -> bool:
        return self.label is ZoneLabel.OUTSIDE


@dataclass(frozen=True)
class PreprocessingReport:
    """Size and cost accounting of the whole structure."""

    epsilon: float
    station_count: int
    total_suspect_cells: int
    total_segment_tests: int
    build_seconds: float
    per_zone: Dict[int, QDSBuildReport]

    @property
    def size_estimate(self) -> int:
        """Total number of stored cells across all per-zone structures."""
        return self.total_suspect_cells


class PointLocationStructure:
    """The DS of Theorem 3: per-station QDS behind a nearest-station front-end.

    Args:
        network: a uniform power network with ``alpha = 2`` and ``beta > 1``.
        epsilon: performance parameter in ``(0, 1)``.
        segment_test_kind: ``"sturm"`` (the paper's algebraic test, default)
            or ``"sampling"`` (the ablation baseline).
        cover_method: ``"brp"`` (default) or ``"ray_sweep"``.
        bounds_method: how the per-zone radius sandwich is obtained —
            ``"measured"`` (tight, default), ``"improved"`` (Section 5.2) or
            ``"explicit"`` (Theorem 4.1).  All three are certified; looser
            bounds only make the grid finer and the structure larger.
    """

    name = "theorem3"

    def __init__(
        self,
        network: WirelessNetwork,
        epsilon: float = 0.1,
        segment_test_kind: str = "sturm",
        cover_method: str = "brp",
        bounds_method: str = "measured",
    ):
        if not 0.0 < epsilon < 1.0:
            raise PointLocationError(f"epsilon must be in (0, 1), got {epsilon}")
        if not network.is_uniform_power():
            raise PointLocationError(
                "the point-location structure requires a uniform power network"
            )
        if network.beta <= 1.0:
            raise PointLocationError("the point-location structure requires beta > 1")
        if network.alpha != 2.0:
            raise PointLocationError("the point-location structure requires alpha = 2")

        self.network = network
        self.epsilon = epsilon
        self.segment_test_kind = segment_test_kind
        self.cover_method = cover_method
        self.bounds_method = bounds_method

        start = time.perf_counter()
        self._tree = KDTree(network.locations())
        self._zone_indexes: Dict[int, ZoneGridIndex] = {}
        self._bounds: Dict[int, RadiusBounds] = {}
        per_zone_reports: Dict[int, QDSBuildReport] = {}
        for index in range(len(network)):
            if network.location_is_shared(index):
                # Degenerate zone: the station is heard nowhere but at its own
                # point; queries fall through to the exact check.
                continue
            zone_index = self._build_zone_index(index)
            self._zone_indexes[index] = zone_index
            per_zone_reports[index] = zone_index.report
        elapsed = time.perf_counter() - start

        self.report = PreprocessingReport(
            epsilon=epsilon,
            station_count=len(network),
            total_suspect_cells=sum(
                report.suspect_cells for report in per_zone_reports.values()
            ),
            total_segment_tests=sum(
                report.segment_tests for report in per_zone_reports.values()
            ),
            build_seconds=elapsed,
            per_zone=per_zone_reports,
        )

    @classmethod
    def build(cls, network: WirelessNetwork, **options) -> "PointLocationStructure":
        """Registry factory: options forward to the constructor."""
        return cls(network, **options)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_zone_index(self, index: int) -> ZoneGridIndex:
        zone = ReceptionZone(network=self.network, index=index)
        bounds = radius_bounds(self.network, index, method=self.bounds_method)
        self._bounds[index] = bounds

        if self.segment_test_kind not in ("sturm", "sampling"):
            raise PointLocationError(
                f"unknown segment test kind: {self.segment_test_kind!r}"
            )
        if self.cover_method != "brp":
            # Only the BRP consults the segment test; building a Sturm chain
            # over the degree-2n reception polynomial is the single most
            # expensive step of preprocessing, so skip it when unused.
            segment_test = None
        elif self.segment_test_kind == "sturm":
            segment_test = SturmSegmentTest(self.network.reception_polynomial(index))
        else:
            segment_test = SamplingSegmentTest(zone.contains)

        probe_radius = bounds.Delta_upper * 1.0000001
        return ZoneGridIndex(
            inside=zone.contains,
            station=zone.station_location,
            delta_lower=bounds.delta_lower,
            Delta_upper=bounds.Delta_upper,
            epsilon=self.epsilon,
            segment_test=segment_test,
            boundary_distance=lambda angle: zone.boundary_distance_along_ray(
                angle, max_radius=probe_radius
            ),
            boundary_distance_batch=lambda angles, **kw: (
                zone.boundary_distances_along_rays(
                    angles, max_radius=probe_radius, **kw
                )
            ),
            cover_method=self.cover_method,
        )

    # ------------------------------------------------------------------
    # Classified queries (the paper's three-way answer)
    # ------------------------------------------------------------------
    def locate_answer(self, point: Point) -> PointLocationAnswer:
        """Classify one query in ``O(log n)`` time (INSIDE / OUTSIDE / UNCERTAIN)."""
        candidate = self._tree.nearest_index(point)
        zone_index = self._zone_indexes.get(candidate)
        if zone_index is None:
            return PointLocationAnswer(station=candidate, label=ZoneLabel.OUTSIDE)
        return PointLocationAnswer(
            station=candidate, label=zone_index.classify(point)
        )

    def locate_answers(self, points: PointsLike) -> List[PointLocationAnswer]:
        """Classify a batch of queries with a vectorised fast path.

        The nearest-candidate front-end runs as one vectorised distance
        argmin over the whole batch (lowest index on exact ties, where the
        k-d tree's visit order may differ — a measure-zero set), and each
        consulted zone structure classifies its group of points through the
        vectorised :meth:`ZoneGridIndex.classify_codes_batch`.  Answers agree
        with per-point :meth:`locate_answer` calls pointwise away from ties.
        """
        pts = as_points_array(points)
        count = len(pts)
        if count == 0:
            return []
        candidates = self._nearest_candidates(pts)

        answers: List[Optional[PointLocationAnswer]] = [None] * count
        for station in np.unique(candidates).tolist():
            selector = np.flatnonzero(candidates == station)
            zone_index = self._zone_indexes.get(station)
            if zone_index is None:
                answer = PointLocationAnswer(station=station, label=ZoneLabel.OUTSIDE)
                for position in selector.tolist():
                    answers[position] = answer
                continue
            labels = zone_index.classify_batch(pts[selector])
            for position, label in zip(selector.tolist(), labels):
                answers[position] = PointLocationAnswer(station=station, label=label)
        return answers

    def locate_many(self, points: Sequence[Point]) -> List[PointLocationAnswer]:
        """Alias of :meth:`locate_answers` (the historical batch-answer name)."""
        return self.locate_answers(points)

    # ------------------------------------------------------------------
    # Locator protocol (uniform int64 station-index answers)
    # ------------------------------------------------------------------
    def locate(self, point: Point) -> int:
        """Index of the station heard at ``point``, or ``NO_RECEPTION`` (-1).

        Certified INSIDE / OUTSIDE answers are free; a point falling in the
        thin uncertainty band (or landing on a degenerate zone's candidate)
        is resolved with one exact SINR evaluation, so the answer is always
        exact while almost every query stays ``O(log n)``.
        """
        candidate = self._tree.nearest_index(point)
        zone_index = self._zone_indexes.get(candidate)
        if zone_index is None:
            # Degenerate zone (shared location): heard only exactly at the
            # station point; the exact check settles it.
            return candidate if self.network.is_received(candidate, point) else NO_RECEPTION
        label = zone_index.classify(point)
        if label is ZoneLabel.INSIDE:
            return candidate
        if label is ZoneLabel.OUTSIDE:
            return NO_RECEPTION
        return candidate if self.network.is_received(candidate, point) else NO_RECEPTION

    def locate_batch(self, points: PointsLike) -> np.ndarray:
        """Vectorised :meth:`locate`: one ``int64`` label per point.

        Candidates come from one vectorised argmin, certified cells are
        answered from the grid structures, and the uncertain-band remainder
        is settled by a single batched reception mask through the active
        engine backend.
        """
        pts = as_points_array(points)
        count = len(pts)
        out = np.full(count, NO_RECEPTION, dtype=np.int64)
        if count == 0:
            return out
        candidates = self._nearest_candidates(pts)

        fallback: List[np.ndarray] = []
        for station in np.unique(candidates).tolist():
            selector = np.flatnonzero(candidates == station)
            zone_index = self._zone_indexes.get(station)
            if zone_index is None:
                # Degenerate zone: only the exact check can answer.
                fallback.append(selector)
                continue
            codes = zone_index.classify_codes_batch(pts[selector])
            out[selector[codes == INSIDE_CODE]] = station
            uncertain = selector[codes == UNCERTAIN_CODE]
            if uncertain.size:
                fallback.append(uncertain)

        if fallback:
            rows = np.concatenate(fallback)
            heard = received_at(self.network, candidates[rows], pts[rows])
            out[rows[heard]] = candidates[rows][heard]
        return out

    def _nearest_candidates(self, pts: np.ndarray) -> np.ndarray:
        """Vectorised nearest-station front-end (lowest index on exact ties)."""
        squared = kernels.pairwise_squared_distances(self.network.coords, pts)
        return np.argmin(squared, axis=0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def zone_index(self, index: int) -> Optional[ZoneGridIndex]:
        """The per-zone grid structure of station ``index`` (None if degenerate)."""
        return self._zone_indexes.get(index)

    def radius_bounds(self, index: int) -> Optional[RadiusBounds]:
        """The radius bounds used to build station ``index``'s grid structure."""
        return self._bounds.get(index)

    def size_estimate(self) -> int:
        """Total number of stored suspect cells (the ``O(n / eps)`` size)."""
        return self.report.total_suspect_cells


register_locator("theorem3", PointLocationStructure)
