"""The one component lifecycle and the composition root that boots it.

Every long-lived object in the serving stack — the micro-batcher, the
query and raster services, the locator router, the metrics hub, the
closed-loop controllers — used to carry its own hand-rolled start/stop
state machine.  :class:`Component` is that machine written once:

* states progress ``new -> running -> stopping -> stopped`` and the
  terminal state is final — a component is started at most once and never
  restarted (the contract the micro-batcher always had, now uniform);
* ``start()`` raises the component's ``lifecycle_error`` on double start
  or restart; ``stop(drain=True)`` is idempotent and returns whatever the
  component's teardown produces (the hub returns its final record);
* ``closed`` is ``True`` from the moment ``stop`` begins; using a closed
  component raises its ``closed_error`` (each layer keeps its taxonomy
  branch: :class:`~repro.exceptions.ServiceClosedError`,
  :class:`~repro.exceptions.ObservabilityClosedError`, ...);
* ``async with component:`` starts on entry and stops on exit, draining
  when the block exits cleanly and aborting when an exception escapes.

Subclasses implement only :meth:`Component._do_start` and
:meth:`Component._do_stop`; the guards, the state, and the context
manager live here — which is also what makes reprolint rule RL010
enforceable: a class outside :mod:`repro.runtime` that defines its own
``start``/``stop`` pair is re-growing the machinery this module unified.

:class:`Runtime` is the composition root the multi-process cluster story
builds on: declare named components (dependencies first), ``start()``
boots them in declaration order and stops them in reverse, and any
component exposing :meth:`Component.stats_source` is automatically wired
into a metrics hub the runtime owns — a worker process is "a composition
root plus a handful of spec strings" (:mod:`repro.runtime.registry`).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    Type,
    runtime_checkable,
)

from ..exceptions import ComponentClosedError, ComponentError, ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..obs import MetricsHub

__all__ = ["Component", "Runtime", "StatsSource"]

_NEW = "new"
_RUNNING = "running"
_STOPPING = "stopping"
_STOPPED = "stopped"


@runtime_checkable
class StatsSource(Protocol):
    """Anything that can report a flat numeric sample of its own state.

    The one protocol behind every metrics wiring in the stack:
    ``metrics_sample()`` returns ``{metric_name: float}`` — exactly the
    shape a :class:`~repro.obs.MetricsHub` source produces.  Stats-bearing
    objects (service stats, batcher gauges, tile caches, screen counters)
    implement it; :func:`repro.obs.stats_source` adapts anything that does
    into a hub source, and :class:`Runtime` auto-registers every component
    whose :meth:`Component.stats_source` yields one.
    """

    def metrics_sample(self) -> Mapping[str, float]: ...


class Component:
    """Base class providing the unified lifecycle (see the module docstring).

    Subclasses set ``lifecycle_error`` / ``closed_error`` to their layer's
    taxonomy branch and implement ``_do_start`` (bind resources, spawn
    tasks) and ``_do_stop`` (tear down; ``drain`` distinguishes a graceful
    stop from an abort).  ``_do_stop`` always runs exactly once, even when
    the component is stopped from the ``new`` state — teardown such as
    withdrawing metrics sources must happen regardless of whether
    ``start`` was ever called — so implementations guard their own
    never-started case.
    """

    #: Raised on lifecycle misuse (double start, restart after stop).
    lifecycle_error: ClassVar[Type[ReproError]] = ComponentError
    #: Raised when a closed component is used; subclasses narrow it.
    closed_error: ClassVar[Type[ReproError]] = ComponentClosedError

    #: Class-level default so subclasses need not call ``__init__`` here;
    #: transitions rebind it on the instance.
    _lifecycle_state: str = _NEW

    # -- subclass hooks --------------------------------------------------
    async def _do_start(self) -> None:
        """Bind resources and spawn tasks (default: nothing to do)."""

    async def _do_stop(self, drain: bool) -> Optional[object]:
        """Tear down; the return value becomes :meth:`stop`'s result."""
        return None

    # -- the lifecycle ---------------------------------------------------
    @property
    def lifecycle_state(self) -> str:
        """``"new"``, ``"running"``, ``"stopping"`` or ``"stopped"``."""
        return self._lifecycle_state

    @property
    def running(self) -> bool:
        return self._lifecycle_state == _RUNNING

    @property
    def closed(self) -> bool:
        """``True`` from the moment ``stop`` begins (terminal thereafter)."""
        return self._lifecycle_state in (_STOPPING, _STOPPED)

    async def start(self) -> "Component":
        """Run the component's startup exactly once; returns ``self``.

        Raises the component's ``lifecycle_error`` when already running or
        already stopped — the unified lifecycle is terminal, a stopped
        component is never restarted.  A failed startup leaves the
        component in ``new`` (nothing was brought up).
        """
        state = self._lifecycle_state
        if state == _RUNNING:
            raise self.lifecycle_error(
                f"{type(self).__name__} is already running; a component is "
                f"started at most once"
            )
        if state != _NEW:
            raise self.lifecycle_error(
                f"{type(self).__name__} was stopped and cannot be restarted"
            )
        await self._do_start()
        self._lifecycle_state = _RUNNING
        return self

    async def stop(self, drain: bool = True) -> Optional[object]:
        """Tear the component down; idempotent, and final.

        ``drain=True`` finishes outstanding work first; ``drain=False``
        aborts it.  The first call runs ``_do_stop`` and returns its
        result; later calls return ``None`` without touching anything.
        """
        if self._lifecycle_state in (_STOPPING, _STOPPED):
            return None
        self._lifecycle_state = _STOPPING
        try:
            return await self._do_stop(drain)
        finally:
            self._lifecycle_state = _STOPPED

    async def __aenter__(self) -> "Component":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop(drain=exc_info[0] is None)

    def _ensure_open(self) -> None:
        """Raise the component's ``closed_error`` once ``stop`` has begun."""
        if self.closed:
            raise self.closed_error(f"{type(self).__name__} is closed")

    # -- observability wiring --------------------------------------------
    def stats_source(self) -> Optional[Callable[[], Mapping[str, float]]]:
        """This component's metrics sampler, or ``None`` when it has none.

        The default recognises the :class:`StatsSource` protocol on the
        component itself; :class:`Runtime` registers the returned callable
        with its owned hub under the component's declared name.
        """
        sample = getattr(self, "metrics_sample", None)
        return sample if callable(sample) else None


class Runtime(Component):
    """A composition root: named components booted and torn down as one.

    Args:
        metrics: a :class:`~repro.obs.MetricsHub` to wire component stats
            into, or ``None`` to create a private one at start (only when
            some component actually exposes a :meth:`Component.stats_source`).
        metrics_interval: collection interval of the private hub.

    ``add(name, component, after=(...))`` declares a component; dependency
    names must already be declared, so declaration order is always a valid
    start order (and the one used — deterministic by construction).
    ``start()`` boots every component in that order, wires stats sources
    into the hub, and starts the hub last so its first tick samples live
    components; ``stop()`` stops the hub first (its final record captures
    the still-running stack) and the components in reverse order.  A
    startup failure rolls back: already-started components are aborted in
    reverse before the error propagates.
    """

    def __init__(
        self,
        *,
        metrics: "Optional[MetricsHub]" = None,
        metrics_interval: Optional[float] = None,
    ) -> None:
        self._components: Dict[str, Component] = {}
        self._dependencies: Dict[str, Tuple[str, ...]] = {}
        self.metrics = metrics
        self._metrics_interval = metrics_interval
        self._hub_started = False

    # -- declaration -----------------------------------------------------
    def add(
        self, name: str, component: Component, *, after: Tuple[str, ...] = ()
    ) -> Component:
        """Declare ``component`` under ``name``; returns the component.

        ``after`` names components that must be running first; they must
        already be declared, which keeps the dependency graph acyclic and
        the declaration order a valid boot order by construction.
        """
        if self._lifecycle_state != _NEW:
            raise ComponentError(
                "components must be added before the runtime starts"
            )
        if not isinstance(component, Component):
            raise ComponentError(
                f"{name!r} is not a runtime Component "
                f"(got {type(component).__name__}); adopt the unified "
                f"lifecycle before composing it"
            )
        if name in self._components:
            raise ComponentError(
                f"a component named {name!r} is already declared"
            )
        dependencies = tuple(after)
        for dependency in dependencies:
            if dependency not in self._components:
                raise ComponentError(
                    f"component {name!r} depends on undeclared component "
                    f"{dependency!r}; declare dependencies first"
                )
        self._components[name] = component
        self._dependencies[name] = dependencies
        return component

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise ComponentError(
                f"no component named {name!r}; declared: "
                f"{sorted(self._components)}"
            ) from None

    def component_names(self) -> Tuple[str, ...]:
        """Declared names in boot (declaration) order."""
        return tuple(self._components)

    def dependencies(self, name: str) -> Tuple[str, ...]:
        """The declared ``after`` set of ``name``."""
        self.component(name)
        return self._dependencies[name]

    # -- lifecycle -------------------------------------------------------
    async def _do_start(self) -> None:
        sources = [
            (name, source)
            for name, component in self._components.items()
            for source in (component.stats_source(),)
            if source is not None
        ]
        hub = self.metrics
        if hub is None and sources:
            # Imported lazily: obs adopts Component from this module, so a
            # module-level import here would cycle.
            from ..obs import MetricsHub

            hub = (
                MetricsHub(self._metrics_interval)
                if self._metrics_interval is not None
                else MetricsHub()
            )
            self.metrics = hub
        if hub is not None:
            for name, source in sources:
                hub.add_source(hub.unique_source_name(name), source)
        started: List[Component] = []
        try:
            for component in self._components.values():
                await component.start()
                started.append(component)
            if hub is not None and not hub.running and not hub.closed:
                await hub.start()
                self._hub_started = True
        except BaseException:
            for component in reversed(started):
                try:
                    await component.stop(drain=False)
                except Exception:
                    pass  # the startup failure is the error to surface
            raise

    async def _do_stop(self, drain: bool) -> None:
        failure: Optional[BaseException] = None
        hub = self.metrics
        if self._hub_started and hub is not None and hub.running:
            # Stop the hub while the components still run: its final
            # collect records the end-of-run state of every source.
            try:
                await hub.stop()
            except BaseException as exc:
                failure = exc
        for component in reversed(list(self._components.values())):
            try:
                await component.stop(drain=drain)
            except BaseException as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
