"""The unified component runtime: registry, lifecycle, epoch coordination.

Three pieces of cross-cutting machinery that every layer of the serving
stack used to hand-roll now live here, written once:

* :mod:`repro.runtime.registry` — the generic name -> item
  :class:`Registry` with ContextVar-scoped selection, composed-name
  resolution (``"sharded:voronoi"``) and portable ``"<kind>/<name>"``
  spec strings.  The engine backend and locator registries are thin
  instantiations of it.
* :mod:`repro.runtime.component` — the :class:`Component` lifecycle
  (``new -> running -> stopping -> stopped``, terminal, async context
  manager, per-layer ``*ClosedError`` guards) adopted by the batcher,
  services, router, hub and controllers, plus the :class:`Runtime`
  composition root that boots components in dependency order, stops them
  in reverse and auto-wires every :class:`StatsSource` into an owned
  metrics hub.
* :mod:`repro.runtime.epoch` — the :class:`EpochCoordinator` that owns
  the gate-build-flip-record-drain swap protocol every ``swap_network``
  delegates to.

Everything above the foundations (engine, pointlocation, service, raster,
obs, control) builds on this package; reprolint rule RL010 keeps it that
way by flagging ad-hoc ContextVar registries and hand-rolled start/stop
state machines anywhere else.
"""

from .component import Component, Runtime, StatsSource
from .epoch import EpochCoordinator, drain_timeout
from .registry import Registry, Selection, registry_for_kind, use_spec

__all__ = [
    "Component",
    "EpochCoordinator",
    "Registry",
    "Runtime",
    "Selection",
    "StatsSource",
    "drain_timeout",
    "registry_for_kind",
    "use_spec",
]
