"""Epoch coordination: the one swap protocol behind every ``swap_network``.

Dynamic-network handoff grew three copies of the same choreography —
:class:`~repro.service.QueryService`, :class:`~repro.service.RasterService`
and :class:`~repro.service.LocatorRouter` each hand-rolled "raise the
controller gate, build the replacement off-loop, flip atomically, drain
the old epoch, lower the gate".  :class:`EpochCoordinator` is that
choreography written once; the services delegate to it and keep only what
is genuinely theirs (what to build, what a flip installs, what a drain
awaits).

The guarantees the coordinator preserves verbatim:

* **seal-time answer capture** — the flip runs synchronously on the event
  loop thread, so batches sealed before it keep the answer function
  captured at their seal time and batches sealed after use the new one;
  no batch ever mixes epochs (the PR-8 contract);
* **off-loop builds** — the build callable runs on an executor thread
  under a copy of the caller's :mod:`contextvars` context, so backend /
  locator selections govern the build while the loop keeps sealing
  batches against the old epoch;
* **controller gating** — ``in_progress`` is ``True`` for the whole
  build-flip-drain span; controllers gated on it skip actuation while an
  epoch swap is underway (a decision computed from pre-swap metrics must
  not fire mid-drain);
* **update-latency accounting** — ``record`` receives build + flip
  seconds, measured before the drain starts: draining overlaps new-epoch
  service and would double-count in-flight engine time.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
from typing import AsyncIterator, Awaitable, Callable, Iterator, Optional, TypeVar

from ..env import SERVICE_DRAIN_TIMEOUT, read_knob

__all__ = ["EpochCoordinator", "drain_timeout"]

T = TypeVar("T")


def drain_timeout(default: float = 30.0) -> float:
    """The bounded-drain timeout, from the ``REPRO_SERVICE_DRAIN_TIMEOUT``
    knob (seconds); read at drain time so a retune applies to the next
    swap without a restart."""
    return float(read_knob(SERVICE_DRAIN_TIMEOUT, str(default)) or default)


class EpochCoordinator:
    """Owns one component's swap state: the gate, the counter, the protocol.

    ``epoch`` counts completed swaps; ``in_progress`` is the controller
    gate (see the module docstring).  One coordinator belongs to one
    owner — services do not share coordinators, exactly as their epochs,
    batchers and stats are per-service by design.
    """

    __slots__ = ("_in_progress", "_epoch")

    def __init__(self) -> None:
        self._in_progress = False
        self._epoch = 0

    @property
    def in_progress(self) -> bool:
        """``True`` for the whole build-flip-drain span of a swap."""
        return self._in_progress

    @property
    def epoch(self) -> int:
        """Completed swaps coordinated so far."""
        return self._epoch

    def gate(self) -> Callable[[], bool]:
        """A zero-argument gate callable for :meth:`Controller.set_gate`."""
        return lambda: self._in_progress

    async def swap(
        self,
        *,
        flip: Callable[[Optional[T]], None],
        build: Optional[Callable[[], T]] = None,
        drain: Optional[Callable[[], Awaitable[None]]] = None,
        record: Optional[Callable[[float], None]] = None,
    ) -> Optional[T]:
        """Run one full swap: gate up, build off-loop, flip, record, drain.

        ``build`` (optional) runs on an executor thread under a copy of
        the current context and its result is handed to ``flip``; with no
        ``build``, ``flip(None)`` installs whatever the caller prepared.
        ``record`` receives the build + flip seconds before the drain
        begins; ``drain`` (optional) awaits the old epoch.  The gate drops
        in a ``finally``, so an error anywhere never leaves controllers
        gated forever.  Returns the built value (``None`` without a
        ``build``).
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._in_progress = True
        try:
            built: Optional[T] = None
            if build is not None:
                # Context.run cannot be entered concurrently from two
                # threads, so the build runs a fresh copy of the caller's
                # context (the same convention as batch dispatch).
                context = contextvars.copy_context()
                built = await loop.run_in_executor(None, context.run, build)
            flip(built)
            self._epoch += 1
            if record is not None:
                record(loop.time() - started)
            if drain is not None:
                await drain()
        finally:
            self._in_progress = False
        return built

    @contextlib.contextmanager
    def guard(self) -> Iterator[None]:
        """Synchronous swap scope: gate up inside, epoch bumped on success.

        For swaps with no async phase (the raster service's invalidate-and-
        reinstall runs lock-protected inside the cache): controllers stay
        gated for the block, and only a clean exit counts as a completed
        epoch.
        """
        self._in_progress = True
        try:
            yield
            self._epoch += 1
        finally:
            self._in_progress = False

    @contextlib.asynccontextmanager
    async def swapping(self) -> AsyncIterator[None]:
        """Async swap scope for sweeps that delegate the real work.

        The locator router swaps each routed service in turn; the router's
        own coordinator gates the whole sweep and counts it as one epoch
        (per-service coordinators still track their own).
        """
        self._in_progress = True
        try:
            yield
            self._epoch += 1
        finally:
            self._in_progress = False
