"""The one registry framework behind every name-based plugin surface.

Nine PRs of organic growth left two hand-rolled copies of the same
machinery — the engine backend registry (:mod:`repro.engine.backend`) and
the locator registry (:mod:`repro.pointlocation.registry`): a lock-guarded
name -> item dict, a :class:`contextvars.ContextVar` holding the current
*selection* (a name, re-resolved on every use, so re-registration under an
active name takes effect immediately), and a token-restoring context
manager.  :class:`Registry` is that machinery written once, parameterised
by the few things that actually differed:

* the **kind** (``"backend"``, ``"locator"``) — also the prefix of the
  portable spec strings below;
* the **error type** raised for unknown names (``ReproError`` for the
  engine, :class:`~repro.exceptions.PointLocationError` for locators), so
  existing ``except`` clauses keep working;
* an optional **compose** hook for derived names: ``"sharded:voronoi"``
  resolves recursively — the prefix must be registered, the remainder must
  itself resolve — without ever being registered itself.

Spec strings
============

A selection that must cross a process boundary (the planned multi-process
serving cluster ships worker configuration as data) is rendered as
``"<kind>/<name>"`` by :meth:`Registry.to_spec` and resolved back by
:meth:`Registry.from_spec` / :func:`use_spec`::

    BACKENDS.to_spec("numpy")          # -> "backend/numpy"
    Registry.from_spec("backend/numpy")        # -> the NumpyBackend
    use_spec("locator/sharded:voronoi")        # select it in this context

Every :class:`Registry` announces itself in a module-level kind table at
construction, so ``from_spec`` needs nothing but the string.

Concurrency contract (inherited verbatim from both predecessors):
``register`` is lock-guarded and safe from any thread; ``get`` is a
lock-free dict read (atomic under the GIL) because it sits on the hot path
of every batched query; the ContextVar isolates selections per thread and
per async task.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar, Token
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
    Union,
)

from ..exceptions import ComponentError, ReproError

__all__ = [
    "Registry",
    "Selection",
    "registry_for_kind",
    "use_spec",
]

T = TypeVar("T")

#: Separator between the registry kind and the item name in a spec string.
SPEC_SEPARATOR = "/"

#: Every constructed registry, by kind — what ``from_spec`` resolves
#: against.  A re-constructed kind replaces the previous entry (tests build
#: scratch registries; the library's own kinds are module singletons).
_REGISTRIES: Dict[str, "Registry[Any]"] = {}
_registries_lock = threading.Lock()


def registry_for_kind(kind: str) -> "Registry[Any]":
    """The registry registered under ``kind``, or raise ``ComponentError``."""
    with _registries_lock:
        registry = _REGISTRIES.get(kind)
        known = sorted(_REGISTRIES)
    if registry is None:
        raise ComponentError(
            f"unknown registry kind {kind!r}; known kinds: {known}"
        )
    return registry


class Selection(Generic[T]):
    """Result of :meth:`Registry.use`: effective immediately, optional context manager.

    ``value`` re-resolves name-based selections on access, so it tracks
    re-registrations exactly like :meth:`Registry.active`.  The value bound
    by ``with registry.use(name) as item`` is necessarily a snapshot taken
    at entry; prefer :meth:`Registry.active` (or the ``value`` property)
    inside the block when re-registration during the block is a
    possibility.  Exiting the block restores the previous selection exactly
    once, also when an exception escapes it, and nested selections unwind
    in order (ContextVar token semantics).
    """

    __slots__ = ("_registry", "_token", "_selected")

    def __init__(
        self,
        registry: "Registry[T]",
        token: Optional["Token[Union[str, T, None]]"],
        selected: Union[str, T],
    ) -> None:
        self._registry = registry
        self._token = token
        self._selected = selected

    @property
    def value(self) -> T:
        return self._registry.get(self._selected)

    def __enter__(self) -> T:
        return self.value

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            self._registry.reset(self._token)
            self._token = None


class Registry(Generic[T]):
    """A lock-guarded, ContextVar-selected name -> item registry.

    Args:
        kind: the spec-string prefix and kind-table key (``"backend"``).
        label: human phrasing used in error messages (``"engine backend"``);
            defaults to ``kind``.
        default: the selection in force where none was made (a name).
        error: the exception type raised for unknown or malformed names —
            each instantiation keeps its layer's taxonomy branch.
        compose: optional hook enabling derived names: a callable
            ``(outer_item, inner_name) -> item`` applied when a name
            contains ``separator`` (``"sharded:voronoi"`` resolves the
            ``"sharded"`` item, validates ``"voronoi"`` recursively, and
            returns ``compose(item, "voronoi")``).  When set, plain names
            must not contain the separator.
        compose_example: a derived-name example quoted by the registration
            error (``"sharded:voronoi"``).
        unknown_hint: appended to the unknown-name error (e.g. a note that
            composed spellings also exist).
        separator: the composed-name separator (``":"``).
        selection_type: the :class:`Selection` subclass :meth:`use` returns,
            letting instantiations keep their historical result types.
    """

    def __init__(
        self,
        kind: str,
        *,
        label: Optional[str] = None,
        default: Optional[str] = None,
        error: Type[ReproError] = ReproError,
        compose: Optional[Callable[[T, str], T]] = None,
        compose_example: str = "",
        unknown_hint: str = "",
        separator: str = ":",
        selection_type: Type[Selection[T]] = Selection,
    ) -> None:
        if not kind or SPEC_SEPARATOR in kind:
            raise ComponentError(
                f"a registry kind must be a non-empty name without "
                f"{SPEC_SEPARATOR!r}, got {kind!r}"
            )
        self.kind = kind
        self.label = label if label is not None else kind
        self.default = default
        self._error = error
        self._compose = compose
        self._compose_example = compose_example
        self._unknown_hint = unknown_hint
        self._separator = separator
        self._selection_type = selection_type
        self._items: Dict[str, T] = {}
        self._lock = threading.Lock()
        # The active *selection*, not the active item: a registered name
        # stays a name and is re-resolved on every use, so re-registration
        # under that name takes effect immediately; an explicitly passed
        # item object is stored as-is.  Being a ContextVar, the selection
        # is isolated per thread / async task.
        self._selection: ContextVar[Union[str, T, None]] = ContextVar(
            f"repro_{kind}", default=default
        )
        with _registries_lock:
            _REGISTRIES[kind] = self

    # -- registration ----------------------------------------------------
    def register(self, name: str, item: T) -> None:
        """Register ``item`` under ``name`` (overwriting any previous one).

        Safe to call from any thread.  Because active selections made by
        name are re-resolved on use, overwriting a name that is currently
        active takes effect immediately.  When composition is enabled,
        derived spellings cannot be registered directly — they are resolved
        dynamically so every registered inner name is immediately
        composable.
        """
        if self._compose is not None and self._separator in name:
            raise self._error(
                f"{self.label} names must not contain {self._separator!r}; "
                f"composed names like {self._compose_example!r} are derived, "
                f"not registered"
            )
        with self._lock:
            self._items[name] = item

    def unregister(self, name: str) -> bool:
        """Remove ``name``; ``False`` when it was not registered.

        For harnesses and tests that register ephemeral items; an active
        selection of a just-unregistered name fails at its next
        re-resolution with the usual unknown-name error.
        """
        with self._lock:
            return self._items.pop(name, None) is not None

    def available(self) -> List[str]:
        """Every registered base name, sorted (deterministic across runs)."""
        with self._lock:
            return sorted(self._items)

    def snapshot(self) -> Dict[str, T]:
        """Name -> item mapping of everything registered (a sorted copy)."""
        with self._lock:
            return {name: self._items[name] for name in sorted(self._items)}

    # -- resolution ------------------------------------------------------
    def get(self, name: Union[str, T, None] = None) -> T:
        """Resolve an item: ``None`` -> the active one, a str -> by name.

        Composed names resolve recursively when the registry has a
        ``compose`` hook (``"sharded:sharded:voronoi"`` works); anything
        that is not ``None`` or a string is returned as-is (an explicitly
        constructed item).
        """
        if name is None:
            return self.active()
        if isinstance(name, str):
            if self._compose is not None:
                base, separator, inner = name.partition(self._separator)
            else:
                base, separator, inner = name, "", ""
            # Lock-free read: dict lookups are atomic under the GIL, and
            # this is on the hot path of every batched query (re-resolution
            # of name-based selections).  The lock only serialises writers.
            item = self._items.get(base)
            if item is None:
                raise self._error(
                    f"unknown {self.label} {base!r}; "
                    f"available: {self.available()}{self._unknown_hint}"
                )
            if separator:
                assert self._compose is not None
                self.get(inner)  # validate the inner name eagerly
                return self._compose(item, inner)
            return item
        return name

    def active(self) -> T:
        """The item the current context's selection resolves to.

        Each thread and async task sees its own :meth:`use` choices,
        falling back to ``default`` where none was made.
        """
        selected = self._selection.get()
        if selected is None:
            raise self._error(
                f"no {self.label} selected and the registry has no default"
            )
        if isinstance(selected, str):
            return self.get(selected)
        return selected

    def use(self, name: Union[str, T]) -> Selection[T]:
        """Make ``name`` the active selection in the current context.

        The switch takes effect immediately and persists for the current
        thread / async task; used as a context manager, the previous
        selection is restored on exit (also when an exception escapes the
        block), and nested selections unwind in order.
        """
        # Resolve eagerly so an unknown name raises here, not at first use.
        self.get(name)
        # The selection stores the *name* when one was given, so later
        # re-registrations under it are picked up on re-resolution; an
        # explicitly passed item object is stored as-is.
        token = self._selection.set(name)
        return self._selection_type(self, token, name)

    def reset(self, token: "Token[Union[str, T, None]]") -> None:
        """Restore the selection a :class:`Selection` token snapshotted."""
        self._selection.reset(token)

    # -- spec strings ----------------------------------------------------
    def to_spec(self, name: Union[str, T, None] = None) -> str:
        """Render a selection as a portable ``"<kind>/<name>"`` string.

        ``None`` renders the current context's selection.  Only name-based
        selections can cross a process boundary: an object selection has no
        portable identity, so it is rejected — register the object and
        select it by name instead.  The name is validated (including
        composed spellings), so a spec that renders is a spec that resolves.
        """
        if name is None:
            name = self._selection.get()
        if not isinstance(name, str):
            raise self._error(
                f"only name-based {self.label} selections can be rendered "
                f"as a spec, got {name!r}; register the object and select "
                f"it by name"
            )
        self.get(name)  # validate, composed spellings included
        return f"{self.kind}{SPEC_SEPARATOR}{name}"

    @staticmethod
    def resolve_spec(spec: str) -> Tuple["Registry[Any]", str]:
        """Split a spec into its registry and name (both validated to exist)."""
        kind, separator, name = spec.partition(SPEC_SEPARATOR)
        if not separator or not kind or not name:
            raise ComponentError(
                f"malformed spec {spec!r}; expected '<kind>{SPEC_SEPARATOR}"
                f"<name>' such as 'backend{SPEC_SEPARATOR}numpy'"
            )
        return registry_for_kind(kind), name

    @classmethod
    def from_spec(cls, spec: str) -> Any:
        """Resolve a ``"<kind>/<name>"`` spec to its registered item."""
        registry, name = cls.resolve_spec(spec)
        return registry.get(name)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry(kind={self.kind!r}, available={self.available()!r})"


def use_spec(spec: str) -> Selection[Any]:
    """Select a spec string's item in the current context.

    ``use_spec("backend/numpy")`` is ``registry_for_kind("backend")
    .use("numpy")`` — the one-call worker-boot hook: a process handed its
    configuration as spec strings applies them without knowing which layer
    each one belongs to.
    """
    registry, name = Registry.resolve_spec(spec)
    return registry.use(name)
